// File-format integration: every dataset the pipeline consumes can be
// written to disk, read back, and produce identical MAP-IT results — the
// property a downstream user of the CLI relies on.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/claims.h"
#include "eval/experiment.h"
#include "trace/trace_io.h"

namespace mapit {
namespace {

TEST(IoRoundTrip, FullPipelineThroughTextFormats) {
  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::small());

  // Serialize every input dataset.
  std::stringstream corpus_text;
  trace::write_corpus(corpus_text, experiment->raw_corpus());
  std::stringstream rib_text;
  experiment->internet()
      .export_rib(experiment->config().noise, experiment->config().dataset_seed)
      .write(rib_text);
  std::stringstream rels_text;
  experiment->relationships().write(rels_text);
  std::stringstream orgs_text;
  experiment->orgs().write(orgs_text);
  std::stringstream ixps_text;
  experiment->ixps().write(ixps_text);

  // Reload and rebuild the pipeline by hand.
  const trace::TraceCorpus corpus = trace::read_corpus(corpus_text);
  const bgp::Rib rib = bgp::Rib::read(rib_text);
  const asdata::AsRelationships rels =
      asdata::AsRelationships::read(rels_text);
  const asdata::As2Org orgs = asdata::As2Org::read(orgs_text);
  const asdata::IxpRegistry ixps = asdata::IxpRegistry::read(ixps_text);

  const auto all_addresses = corpus.distinct_addresses();
  const auto sanitized = trace::sanitize(corpus);
  const graph::InterfaceGraph graph(sanitized.clean, all_addresses);
  const bgp::Ip2As ip2as(
      rib,
      experiment->internet().export_fallback(experiment->config().noise,
                                             experiment->config().dataset_seed),
      &ixps);

  core::Options options;
  options.f = 0.5;
  const core::Result reloaded =
      core::run_mapit(graph, ip2as, orgs, rels, options);
  const core::Result original = experiment->run_mapit(options);

  EXPECT_EQ(baselines::claims_from_result(reloaded),
            baselines::claims_from_result(original));
  EXPECT_EQ(reloaded.inferences.size(), original.inferences.size());
}

TEST(IoRoundTrip, CorpusSurvivesTwoRoundTrips) {
  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::small());
  std::stringstream first;
  trace::write_corpus(first, experiment->raw_corpus());
  const std::string first_text = first.str();
  std::stringstream reread_in(first_text);
  const trace::TraceCorpus reread = trace::read_corpus(reread_in);
  std::stringstream second;
  trace::write_corpus(second, reread);
  EXPECT_EQ(first_text, second.str());
}

}  // namespace
}  // namespace mapit
