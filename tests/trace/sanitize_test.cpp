#include "trace/sanitize.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "trace/trace_io.h"

namespace mapit::trace {
namespace {

using testutil::corpus_from;

TEST(Sanitize, RemovesQuotedTtl0Hops) {
  // The buggy-router artifact (§4.1): the hop quoting TTL 0 goes away, the
  // rest of the trace stays.
  const auto result = sanitize(corpus_from({
      "0|9.9.9.9|1.0.0.1 2.0.0.1@0 2.0.0.1 3.0.0.1",
  }));
  ASSERT_EQ(result.clean.size(), 1u);
  const Trace& t = result.clean.traces()[0];
  ASSERT_EQ(t.hops.size(), 3u);
  EXPECT_EQ(*t.hops[0].address, testutil::addr("1.0.0.1"));
  EXPECT_EQ(*t.hops[1].address, testutil::addr("2.0.0.1"));
  EXPECT_EQ(t.hops[1].probe_ttl, 3);  // original TTL is preserved
  EXPECT_EQ(result.stats.removed_ttl0_hops, 1u);
}

TEST(Sanitize, TtlRemovalBreaksFalseAdjacency) {
  const auto result = sanitize(corpus_from({
      "0|9.9.9.9|1.0.0.1 3.0.0.1@0 3.0.0.1",
  }));
  const Trace& t = result.clean.traces()[0];
  ASSERT_EQ(t.hops.size(), 2u);
  // 1.0.0.1 at TTL 1 and 3.0.0.1 at TTL 3: no longer consecutive, so the
  // neighbour-set builder will not pair them.
  EXPECT_EQ(t.hops[0].probe_ttl, 1);
  EXPECT_EQ(t.hops[1].probe_ttl, 3);
}

TEST(Sanitize, DiscardsTracesWithInterfaceCycles) {
  const auto result = sanitize(corpus_from({
      "0|9.9.9.9|1.0.0.1 1.0.0.2 1.0.0.1",  // cycle: dropped
      "1|9.9.9.9|1.0.0.1 1.0.0.2",          // clean: kept
  }));
  EXPECT_EQ(result.clean.size(), 1u);
  EXPECT_EQ(result.stats.discarded_traces, 1u);
  EXPECT_EQ(result.stats.input_traces, 2u);
  EXPECT_NEAR(result.stats.discard_fraction(), 0.5, 1e-9);
}

TEST(Sanitize, Ttl0RemovalHappensBeforeCycleCheck) {
  // The repeated address only exists through the buggy hop; stripping it
  // first means the trace survives (the paper sanitizes then checks).
  const auto result = sanitize(corpus_from({
      "0|9.9.9.9|1.0.0.1 1.0.0.2 1.0.0.1@0 1.0.0.3",
  }));
  EXPECT_EQ(result.clean.size(), 1u);
  EXPECT_EQ(result.stats.discarded_traces, 0u);
}

TEST(Sanitize, AddressRetentionAccounting) {
  const auto result = sanitize(corpus_from({
      "0|9.9.9.9|1.0.0.1 1.0.0.2 1.0.0.1",  // cycle: loses 1.0.0.2
      "1|9.9.9.9|1.0.0.1 1.0.0.3",
  }));
  EXPECT_EQ(result.stats.input_addresses, 3u);
  EXPECT_EQ(result.stats.retained_addresses, 2u);
  EXPECT_NEAR(result.stats.address_retention(), 2.0 / 3.0, 1e-9);
}

TEST(Sanitize, EmptyCorpus) {
  const auto result = sanitize(TraceCorpus{});
  EXPECT_TRUE(result.clean.empty());
  EXPECT_EQ(result.stats.discard_fraction(), 0.0);
  EXPECT_EQ(result.stats.address_retention(), 1.0);
}

TEST(Sanitize, OutputInvariantsOnMessyCorpus) {
  // Property: after sanitization no trace has a cycle or a quoted-TTL-0 hop.
  TraceCorpus corpus = corpus_from({
      "0|9.9.9.9|1.0.0.1 2.0.0.1@0 1.0.0.2 1.0.0.1",
      "1|9.9.9.9|1.0.0.1@0 1.0.0.2@0 1.0.0.3@0",
      "2|9.9.9.9|* * *",
      "3|9.9.9.9|5.0.0.1 5.0.0.2 5.0.0.3 5.0.0.2",
      "4|9.9.9.9|6.0.0.1 6.0.0.1 6.0.0.2",
  });
  const auto result = sanitize(corpus);
  for (const Trace& t : result.clean.traces()) {
    EXPECT_FALSE(t.has_interface_cycle());
    for (const TraceHop& hop : t.hops) {
      EXPECT_FALSE(hop.address && hop.quoted_ttl && *hop.quoted_ttl == 0);
    }
  }
}

}  // namespace
}  // namespace mapit::trace
