#include "trace/trace.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mapit::trace {
namespace {

using testutil::addr;
using testutil::corpus_from;

Trace trace_of(std::initializer_list<const char*> hops) {
  Trace t;
  t.destination = addr("9.9.9.9");
  std::uint8_t ttl = 0;
  for (const char* hop : hops) {
    TraceHop h;
    h.probe_ttl = ++ttl;
    if (std::string_view(hop) != "*") h.address = addr(hop);
    t.hops.push_back(h);
  }
  return t;
}

TEST(Trace, ResponsiveHops) {
  EXPECT_EQ(trace_of({"1.0.0.1", "*", "1.0.0.2"}).responsive_hops(), 2u);
  EXPECT_EQ(trace_of({"*", "*"}).responsive_hops(), 0u);
  EXPECT_EQ(Trace{}.responsive_hops(), 0u);
}

TEST(Trace, NoCycleInSimplePath) {
  EXPECT_FALSE(trace_of({"1.0.0.1", "1.0.0.2", "1.0.0.3"}).has_interface_cycle());
}

TEST(Trace, CycleWhenAddressRepeatsWithGap) {
  // Viger et al. cycle: same address twice, separated by a different one.
  EXPECT_TRUE(
      trace_of({"1.0.0.1", "1.0.0.2", "1.0.0.1"}).has_interface_cycle());
}

TEST(Trace, ImmediateRepeatIsNotACycle) {
  // A router answering two consecutive TTLs is not a cycle (footnote 5).
  EXPECT_FALSE(
      trace_of({"1.0.0.1", "1.0.0.1", "1.0.0.2"}).has_interface_cycle());
}

TEST(Trace, NullHopsDoNotSeparateForCycleDetection) {
  // A '*' between two occurrences is not a *different address*.
  EXPECT_FALSE(trace_of({"1.0.0.1", "*", "1.0.0.1"}).has_interface_cycle());
  // But a real address after the '*' still makes it a cycle.
  EXPECT_TRUE(trace_of({"1.0.0.1", "*", "1.0.0.2", "1.0.0.1"})
                  .has_interface_cycle());
}

TEST(Trace, LongRangeCycleDetected) {
  EXPECT_TRUE(trace_of({"1.0.0.1", "1.0.0.2", "1.0.0.3", "1.0.0.4",
                        "1.0.0.2"})
                  .has_interface_cycle());
}

TEST(TraceCorpus, DistinctAddressesSortedUnique) {
  const TraceCorpus corpus = corpus_from({
      "0|9.9.9.9|1.0.0.2 1.0.0.1",
      "1|9.9.9.9|1.0.0.1 1.0.0.3",
  });
  const auto addresses = corpus.distinct_addresses();
  ASSERT_EQ(addresses.size(), 3u);
  EXPECT_EQ(addresses[0], addr("1.0.0.1"));
  EXPECT_EQ(addresses[1], addr("1.0.0.2"));
  EXPECT_EQ(addresses[2], addr("1.0.0.3"));
}

TEST(TraceCorpus, AdjacentAddressesRequireConsecutiveTtls) {
  const TraceCorpus corpus = corpus_from({
      "0|9.9.9.9|1.0.0.1 * 1.0.0.2",   // gap: not adjacent
      "1|9.9.9.9|1.0.0.3 1.0.0.4",     // adjacent
      "2|9.9.9.9|1.0.0.5",             // alone: not adjacent
  });
  const auto adjacent = corpus.adjacent_addresses();
  ASSERT_EQ(adjacent.size(), 2u);
  EXPECT_EQ(adjacent[0], addr("1.0.0.3"));
  EXPECT_EQ(adjacent[1], addr("1.0.0.4"));
}

TEST(TraceCorpus, EmptyCorpus) {
  const TraceCorpus corpus;
  EXPECT_TRUE(corpus.empty());
  EXPECT_TRUE(corpus.distinct_addresses().empty());
  EXPECT_TRUE(corpus.adjacent_addresses().empty());
}

}  // namespace
}  // namespace mapit::trace
