#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>

#include "net/error.h"
#include "test_util.h"

namespace mapit::trace {
namespace {

TEST(TraceIo, ParsesFullSyntax) {
  const Trace t =
      parse_trace("3|9.9.9.9|1.0.0.1 * 1.0.0.2@0 1.0.0.3@255");
  EXPECT_EQ(t.monitor, 3u);
  EXPECT_EQ(t.destination, testutil::addr("9.9.9.9"));
  ASSERT_EQ(t.hops.size(), 4u);
  EXPECT_EQ(t.hops[0].probe_ttl, 1);
  EXPECT_EQ(*t.hops[0].address, testutil::addr("1.0.0.1"));
  EXPECT_FALSE(t.hops[0].quoted_ttl.has_value());
  EXPECT_FALSE(t.hops[1].address.has_value());
  EXPECT_EQ(t.hops[1].probe_ttl, 2);
  EXPECT_EQ(*t.hops[2].quoted_ttl, 0);
  EXPECT_EQ(*t.hops[3].quoted_ttl, 255);
}

TEST(TraceIo, EmptyHopList) {
  const Trace t = parse_trace("0|9.9.9.9|");
  EXPECT_TRUE(t.hops.empty());
}

TEST(TraceIo, FormatRoundTrip) {
  const char* line = "7|9.9.9.9|1.0.0.1 * 1.0.0.2@0 1.0.0.3@17";
  EXPECT_EQ(format_trace(parse_trace(line)), line);
}

class TraceIoBadInputTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TraceIoBadInputTest, Rejected) {
  EXPECT_THROW((void)parse_trace(GetParam()), mapit::ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, TraceIoBadInputTest,
    ::testing::Values("",                       // empty line
                      "3|9.9.9.9",              // missing hops field
                      "3|9.9.9.9|a|b",          // too many fields
                      "x|9.9.9.9|1.0.0.1",      // bad monitor
                      "3|nine|1.0.0.1",         // bad destination
                      "3|9.9.9.9|1.0.0",        // bad hop address
                      "3|9.9.9.9|1.0.0.1@",     // empty quoted TTL
                      "3|9.9.9.9|1.0.0.1@999",  // quoted TTL too big
                      "3|9.9.9.9|1.0.0.1@1x",   // junk quoted TTL
                      "3|9.9.9.9|1.0.0.1@1234"  // too many digits
                      ));

TEST(TraceIo, CorpusRoundTrip) {
  const TraceCorpus corpus = testutil::corpus_from({
      "0|9.9.9.9|1.0.0.1 1.0.0.2",
      "1|8.8.8.8|* * 2.0.0.1@0",
      "2|7.7.7.7|",
  });
  std::stringstream stream;
  write_corpus(stream, corpus);
  const TraceCorpus reread = read_corpus(stream);
  ASSERT_EQ(reread.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(reread.traces()[i], corpus.traces()[i]) << "trace " << i;
  }
}

TEST(TraceIo, ReadNamesOffendingLine) {
  std::stringstream stream("# ok\n0|9.9.9.9|1.0.0.1\ngarbage\n");
  try {
    (void)read_corpus(stream);
    FAIL() << "expected ParseError";
  } catch (const mapit::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

// Every malformed variant from the Rejected suite above, embedded in a
// corpus: strict mode throws naming the right line; lenient mode skips it,
// counts it, and keeps the good neighbors.
class TraceIoLenientTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TraceIoLenientTest, StrictThrowsWithLineNumber) {
  std::stringstream stream("# header\n0|9.9.9.9|1.0.0.1\n" +
                           std::string(GetParam()) + "\n1|8.8.8.8|*\n");
  try {
    (void)read_corpus(stream);
    FAIL() << "expected ParseError for '" << GetParam() << "'";
  } catch (const mapit::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST_P(TraceIoLenientTest, LenientSkipsCountsAndKeepsTheRest) {
  std::stringstream stream("# header\n0|9.9.9.9|1.0.0.1\n" +
                           std::string(GetParam()) + "\n1|8.8.8.8|*\n");
  LoadReport report;
  const TraceCorpus corpus = read_corpus(stream, /*threads=*/1, &report);
  ASSERT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus.traces()[0].monitor, 0u);
  EXPECT_EQ(corpus.traces()[1].monitor, 1u);
  EXPECT_EQ(report.skipped(), 1u);
  EXPECT_EQ(report.loaded(), 2u);
  ASSERT_EQ(report.offenders().size(), 1u);
  EXPECT_EQ(report.offenders()[0].line_no, 3u);
  // "# header\n" + "0|9.9.9.9|1.0.0.1\n" = 27 bytes before line 3.
  EXPECT_EQ(report.offenders()[0].byte_offset, 27u);
  EXPECT_NE(report.offenders()[0].error.find("line 3"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, TraceIoLenientTest,
    ::testing::Values("3|9.9.9.9",              // missing hops field
                      "3|9.9.9.9|a|b",          // too many fields
                      "x|9.9.9.9|1.0.0.1",      // bad monitor
                      "3|nine|1.0.0.1",         // bad destination
                      "3|9.9.9.9|1.0.0",        // bad hop address
                      "3|9.9.9.9|1.0.0.1@",     // empty quoted TTL
                      "3|9.9.9.9|1.0.0.1@999",  // quoted TTL too big
                      "3|9.9.9.9|1.0.0.1@1x",   // junk quoted TTL
                      "3|9.9.9.9|1.0.0.1@1234"  // too many digits
                      ));

TEST(TraceIo, LenientAllBadYieldsEmptyCorpus) {
  std::stringstream stream("junk\nmore junk\n");
  LoadReport report;
  const TraceCorpus corpus = read_corpus(stream, 1, &report);
  EXPECT_EQ(corpus.size(), 0u);
  EXPECT_EQ(report.skipped(), 2u);
  EXPECT_EQ(report.loaded(), 0u);
}

TEST(TraceIo, LenientCleanCorpusReportsNothing) {
  std::stringstream stream("0|9.9.9.9|1.0.0.1\n1|8.8.8.8|*\n");
  LoadReport report;
  const TraceCorpus corpus = read_corpus(stream, 1, &report);
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_EQ(report.skipped(), 0u);
  EXPECT_EQ(report.loaded(), 2u);
  EXPECT_EQ(report.summary("traces"), "");
}

TEST(TraceIo, RandomTraceRoundTrip) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::uint32_t> addr_dist(0x01000000,
                                                         0xDFFFFFFF);
  std::uniform_int_distribution<int> len_dist(0, 20);
  std::uniform_int_distribution<int> kind(0, 5);
  for (int i = 0; i < 50; ++i) {
    Trace t;
    t.monitor = static_cast<MonitorId>(i);
    t.destination = net::Ipv4Address(addr_dist(rng));
    const int hops = len_dist(rng);
    for (int h = 0; h < hops; ++h) {
      TraceHop hop;
      hop.probe_ttl = static_cast<std::uint8_t>(h + 1);
      const int k = kind(rng);
      if (k > 0) {
        hop.address = net::Ipv4Address(addr_dist(rng));
        if (k == 1) hop.quoted_ttl = 0;
        if (k == 2) hop.quoted_ttl = 1;
      }
      t.hops.push_back(hop);
    }
    EXPECT_EQ(parse_trace(format_trace(t)), t);
  }
}

}  // namespace
}  // namespace mapit::trace
