#include "topo/truth_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "net/error.h"
#include "topo/generator.h"

namespace mapit::topo {
namespace {

TEST(TruthIo, RoundTrip) {
  GeneratorConfig config;
  config.seed = 3;
  config.tier1_count = 3;
  config.transit_count = 10;
  config.stub_count = 30;
  config.rne_customer_count = 5;
  const Internet net = Generator(config).generate();

  std::stringstream stream;
  write_true_links(stream, net.true_links());
  const std::vector<TrueLink> reread = read_true_links(stream);
  ASSERT_EQ(reread.size(), net.true_links().size());
  for (std::size_t i = 0; i < reread.size(); ++i) {
    EXPECT_EQ(reread[i].addr_a, net.true_links()[i].addr_a);
    EXPECT_EQ(reread[i].addr_b, net.true_links()[i].addr_b);
    EXPECT_EQ(reread[i].as_a, net.true_links()[i].as_a);
    EXPECT_EQ(reread[i].as_b, net.true_links()[i].as_b);
    EXPECT_EQ(reread[i].via_ixp, net.true_links()[i].via_ixp);
  }
}

TEST(TruthIo, ParsesIxpFlag) {
  std::stringstream stream(
      "# header\n"
      "1.0.0.1|1.0.0.2|100|200\n"
      "195.1.0.1|195.1.0.2|100|300|ixp\n");
  const auto links = read_true_links(stream);
  ASSERT_EQ(links.size(), 2u);
  EXPECT_FALSE(links[0].via_ixp);
  EXPECT_TRUE(links[1].via_ixp);
  EXPECT_EQ(links[1].as_b, 300u);
}

TEST(TruthIo, RejectsMalformed) {
  {
    std::stringstream stream("1.0.0.1|1.0.0.2|100\n");  // missing as_b
    EXPECT_THROW((void)read_true_links(stream), mapit::ParseError);
  }
  {
    std::stringstream stream("1.0.0.1|1.0.0.2|100|200|wat\n");
    EXPECT_THROW((void)read_true_links(stream), mapit::ParseError);
  }
  {
    std::stringstream stream("bogus|1.0.0.2|100|200\n");
    EXPECT_THROW((void)read_true_links(stream), mapit::ParseError);
  }
  {
    std::stringstream stream("1.0.0.1|1.0.0.2|x|200\n");
    EXPECT_THROW((void)read_true_links(stream), mapit::ParseError);
  }
}

}  // namespace
}  // namespace mapit::topo
