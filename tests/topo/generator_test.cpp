// Tests for the synthetic Internet generator: determinism, structural
// soundness, addressing invariants, and dataset exporters.
#include "topo/generator.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "net/error.h"
#include "net/point_to_point.h"
#include "net/special_purpose.h"

namespace mapit::topo {
namespace {

GeneratorConfig small_config(std::uint64_t seed = 42) {
  GeneratorConfig config;
  config.seed = seed;
  config.tier1_count = 4;
  config.transit_count = 20;
  config.stub_count = 80;
  config.rne_customer_count = 10;
  return config;
}

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() : net_(Generator(small_config()).generate()) {}
  Internet net_;
};

TEST_F(GeneratorTest, PopulationMatchesConfig) {
  EXPECT_EQ(net_.ases().size(), 4u + 20u + 80u);
  int tier1 = 0, transit = 0, stub = 0;
  for (const AsInfo& info : net_.ases()) {
    switch (info.tier) {
      case AsTier::kTier1: ++tier1; break;
      case AsTier::kTransit: ++transit; break;
      case AsTier::kStub: ++stub; break;
    }
  }
  EXPECT_EQ(tier1, 4);
  EXPECT_EQ(transit, 20);
  EXPECT_EQ(stub, 80);
}

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  const Internet again = Generator(small_config()).generate();
  ASSERT_EQ(again.links().size(), net_.links().size());
  for (std::size_t i = 0; i < net_.links().size(); ++i) {
    EXPECT_EQ(again.links()[i].addr_a, net_.links()[i].addr_a);
    EXPECT_EQ(again.links()[i].addr_b, net_.links()[i].addr_b);
  }
  ASSERT_EQ(again.true_links().size(), net_.true_links().size());
}

TEST_F(GeneratorTest, DifferentSeedsDiffer) {
  const Internet other = Generator(small_config(43)).generate();
  bool any_difference = other.links().size() != net_.links().size();
  for (std::size_t i = 0;
       !any_difference && i < std::min(other.links().size(),
                                       net_.links().size());
       ++i) {
    any_difference = other.links()[i].addr_a != net_.links()[i].addr_a;
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(GeneratorTest, InterfaceAddressesAreUniqueAndPublic) {
  std::unordered_set<net::Ipv4Address> seen;
  for (const Link& link : net_.links()) {
    EXPECT_TRUE(seen.insert(link.addr_a).second)
        << link.addr_a.to_string() << " reused";
    EXPECT_TRUE(seen.insert(link.addr_b).second)
        << link.addr_b.to_string() << " reused";
    EXPECT_FALSE(net::is_special_purpose(link.addr_a));
    EXPECT_FALSE(net::is_special_purpose(link.addr_b));
  }
}

TEST_F(GeneratorTest, AnnouncedPrefixesAreDisjointAcrossAses) {
  for (std::size_t i = 0; i < net_.ases().size(); ++i) {
    for (std::size_t j = i + 1; j < net_.ases().size(); ++j) {
      for (const net::Prefix& a : net_.ases()[i].announced) {
        for (const net::Prefix& b : net_.ases()[j].announced) {
          EXPECT_FALSE(a.contains(b) || b.contains(a))
              << a.to_string() << " vs " << b.to_string();
        }
      }
    }
  }
}

TEST_F(GeneratorTest, LinkAddressingMatchesOwnerSpace) {
  // For non-IXP inter-AS links, both interface addresses come from the
  // space of the endpoint indicated by `addressing`.
  for (const Link& link : net_.links()) {
    if (!link.inter_as || link.addressing == LinkAddressing::kIxp) continue;
    const asdata::Asn owner =
        link.addressing == LinkAddressing::kFromA
            ? net_.router(link.a).owner
            : net_.router(link.b).owner;
    const AsInfo& info = net_.as_info(owner);
    auto in_space = [&](net::Ipv4Address address) {
      for (const net::Prefix& prefix : info.announced) {
        if (prefix.contains(address)) return true;
      }
      return info.unannounced && info.unannounced->contains(address);
    };
    EXPECT_TRUE(in_space(link.addr_a)) << link.addr_a.to_string();
    EXPECT_TRUE(in_space(link.addr_b)) << link.addr_b.to_string();
  }
}

TEST_F(GeneratorTest, PointToPointPairsShareTheirPrefix) {
  for (const Link& link : net_.links()) {
    if (link.addressing == LinkAddressing::kIxp) continue;
    ASSERT_TRUE(link.prefix_length == 30 || link.prefix_length == 31);
    const net::Prefix block(link.addr_a, link.prefix_length);
    EXPECT_TRUE(block.contains(link.addr_b));
    if (link.prefix_length == 30) {
      EXPECT_TRUE(net::is_slash30_host(link.addr_a));
      EXPECT_TRUE(net::is_slash30_host(link.addr_b));
    }
  }
}

TEST_F(GeneratorTest, IxpLinksDrawFromRegisteredLans) {
  bool any_ixp = false;
  for (const Link& link : net_.links()) {
    if (link.addressing != LinkAddressing::kIxp) continue;
    any_ixp = true;
    EXPECT_TRUE(link.inter_as);
    bool inside = false;
    for (const auto& [prefix, id] : net_.ixp_lans()) {
      if (prefix.contains(link.addr_a) && prefix.contains(link.addr_b)) {
        inside = true;
        EXPECT_EQ(id, link.ixp);
      }
    }
    EXPECT_TRUE(inside);
  }
  EXPECT_TRUE(any_ixp);  // the config should produce some IXP peerings
}

TEST_F(GeneratorTest, TrueLinksMirrorInterAsLinks) {
  std::size_t inter_as = 0;
  for (const Link& link : net_.links()) {
    if (link.inter_as) ++inter_as;
  }
  EXPECT_EQ(net_.true_links().size(), inter_as);
  for (const TrueLink& truth : net_.true_links()) {
    const Link& link = net_.link(truth.link);
    EXPECT_TRUE(link.inter_as);
    EXPECT_NE(truth.as_a, truth.as_b);
    // addr_a sits on the as_a router.
    const RouterId ra = net_.router_of_address(truth.addr_a);
    const RouterId rb = net_.router_of_address(truth.addr_b);
    EXPECT_EQ(net_.router(ra).owner, truth.as_a);
    EXPECT_EQ(net_.router(rb).owner, truth.as_b);
  }
}

TEST_F(GeneratorTest, ProviderGraphIsAcyclic) {
  // Transit relationships must form a DAG (the generator builds them
  // hierarchically); walk provider chains and ensure they terminate.
  const auto& rels = net_.true_relationships();
  for (const AsInfo& info : net_.ases()) {
    std::unordered_set<asdata::Asn> visited;
    std::vector<asdata::Asn> stack{info.asn};
    std::size_t steps = 0;
    while (!stack.empty()) {
      const asdata::Asn current = stack.back();
      stack.pop_back();
      ASSERT_LT(++steps, 100000u) << "provider chain explosion";
      for (asdata::Asn provider : rels.providers_of(current)) {
        ASSERT_NE(provider, info.asn) << "provider cycle through AS"
                                      << info.asn;
        if (visited.insert(provider).second) stack.push_back(provider);
      }
    }
  }
}

TEST_F(GeneratorTest, RneCustomersAreNeverNatStubs) {
  const auto& rels = net_.true_relationships();
  for (asdata::Asn customer : rels.customers_of(Generator::rne_asn())) {
    const AsInfo& info = net_.as_info(customer);
    if (info.tier == AsTier::kStub) {
      EXPECT_FALSE(info.nat_stub) << "AS" << customer;
    }
  }
}

TEST_F(GeneratorTest, RoutersBelongToTheirAs) {
  for (const AsInfo& info : net_.ases()) {
    EXPECT_FALSE(info.routers.empty());
    for (RouterId id : info.routers) {
      EXPECT_EQ(net_.router(id).owner, info.asn);
    }
  }
}

TEST_F(GeneratorTest, AddressLookups) {
  const Link& link = net_.links().front();
  EXPECT_EQ(net_.router_of_address(link.addr_a), link.a);
  EXPECT_EQ(net_.link_of_address(link.addr_b), link.id);
  EXPECT_EQ(net_.router_of_address(net::Ipv4Address(1, 1, 1, 1)), kNoRouter);
  EXPECT_EQ(net_.link_of_address(net::Ipv4Address(1, 1, 1, 1)), kNoLink);
}

// ---------------------------------------------------------------------------
// Dataset exporters.
// ---------------------------------------------------------------------------

TEST_F(GeneratorTest, RibAndFallbackPartitionAnnouncedSpace) {
  DatasetNoise noise;
  noise.fallback_only = 0.2;  // exaggerate to exercise both sides
  const bgp::Rib rib = net_.export_rib(noise, 7);
  const auto fallback = net_.export_fallback(noise, 7);
  const auto bgp_table = rib.consolidate();
  std::size_t via_fallback = 0;
  for (const AsInfo& info : net_.ases()) {
    for (const net::Prefix& prefix : info.announced) {
      const bool in_bgp = bgp_table.find(prefix) != nullptr;
      const bool in_fallback = fallback.find(prefix) != nullptr;
      EXPECT_TRUE(in_bgp != in_fallback) << prefix.to_string();
      if (in_fallback) {
        ++via_fallback;
        EXPECT_EQ(*fallback.find(prefix), info.asn);
      } else {
        EXPECT_EQ(*bgp_table.find(prefix), info.asn);
      }
    }
  }
  EXPECT_GT(via_fallback, 0u);
}

TEST_F(GeneratorTest, RelationshipExportDropsSomeEdges) {
  DatasetNoise noise;
  noise.missing_relationship = 0.3;
  const auto exported = net_.export_relationships(noise, 7);
  EXPECT_LT(exported.transit_count(),
            net_.true_relationships().transit_count());
  // Exported edges are always true edges.
  for (asdata::Asn asn : exported.all_ases()) {
    for (asdata::Asn customer : exported.customers_of(asn)) {
      EXPECT_EQ(net_.true_relationships().relationship(asn, customer),
                asdata::Relationship::kProvider);
    }
  }
}

TEST_F(GeneratorTest, As2OrgExportIsSubsetOfTruth) {
  DatasetNoise noise;
  noise.missing_sibling = 0.5;
  const auto exported = net_.export_as2org(noise, 7);
  for (const AsInfo& info : net_.ases()) {
    const auto org = exported.org_of(info.asn);
    if (org != asdata::kNoOrg) {
      EXPECT_EQ(org, info.org);
    }
  }
}

TEST_F(GeneratorTest, IxpExportSubset) {
  DatasetNoise noise;
  noise.missing_ixp_prefix = 0.0;
  const auto full = net_.export_ixps(noise, 7);
  EXPECT_EQ(full.prefix_count(), net_.ixp_lans().size());
}

TEST_F(GeneratorTest, ProbeDestinationsInsideAnnouncedSpace) {
  const auto destinations = net_.probe_destinations(2, 7);
  EXPECT_FALSE(destinations.empty());
  EXPECT_TRUE(std::is_sorted(destinations.begin(), destinations.end()));
  for (net::Ipv4Address destination : destinations) {
    bool covered = false;
    for (const AsInfo& info : net_.ases()) {
      for (const net::Prefix& prefix : info.announced) {
        covered |= prefix.contains(destination);
      }
    }
    EXPECT_TRUE(covered) << destination.to_string();
  }
}

TEST(GeneratorConfigValidation, RejectsDegenerateConfigs) {
  GeneratorConfig config = small_config();
  config.tier1_count = 1;
  EXPECT_THROW(Generator(config).generate(), mapit::InvariantError);
  config = small_config();
  config.rne_customer_count = config.stub_count + 1;
  EXPECT_THROW(Generator(config).generate(), mapit::InvariantError);
}

}  // namespace
}  // namespace mapit::topo
