#include "asdata/relationships.h"

#include <gtest/gtest.h>

#include <sstream>

#include "net/error.h"

namespace mapit::asdata {
namespace {

class RelationshipsTest : public ::testing::Test {
 protected:
  RelationshipsTest() {
    // 100 -> 1000 -> 10000 transit chain; 100 -- 101 peering.
    rels_.add_transit(100, 1000);
    rels_.add_transit(1000, 10000);
    rels_.add_peering(100, 101);
  }
  AsRelationships rels_;
  As2Org orgs_;
};

TEST_F(RelationshipsTest, RelationshipDirections) {
  EXPECT_EQ(rels_.relationship(100, 1000), Relationship::kProvider);
  EXPECT_EQ(rels_.relationship(1000, 100), Relationship::kCustomer);
  EXPECT_EQ(rels_.relationship(100, 101), Relationship::kPeer);
  EXPECT_EQ(rels_.relationship(101, 100), Relationship::kPeer);
  EXPECT_EQ(rels_.relationship(100, 10000), Relationship::kNone);
}

TEST_F(RelationshipsTest, KnownAndStub) {
  EXPECT_TRUE(rels_.known(100));
  EXPECT_TRUE(rels_.known(10000));
  EXPECT_FALSE(rels_.known(55));
  EXPECT_FALSE(rels_.is_stub(100));
  EXPECT_FALSE(rels_.is_stub(1000));
  EXPECT_TRUE(rels_.is_stub(10000));  // no customers
  EXPECT_TRUE(rels_.is_stub(55));     // absent entirely
  EXPECT_TRUE(rels_.is_stub(101));    // peer with no customers
}

TEST_F(RelationshipsTest, IspRequiresNonSiblingCustomer) {
  EXPECT_TRUE(rels_.is_isp(100, orgs_));
  EXPECT_TRUE(rels_.is_isp(1000, orgs_));
  EXPECT_FALSE(rels_.is_isp(10000, orgs_));
  // When 1000's only customer is a sibling, it stops being an ISP.
  orgs_.add_sibling_pair(1000, 10000);
  EXPECT_FALSE(rels_.is_isp(1000, orgs_));
}

TEST_F(RelationshipsTest, ClassifyLinks) {
  // transit link to an ISP customer
  EXPECT_EQ(rels_.classify_link(100, 1000, orgs_), LinkClass::kIspTransit);
  EXPECT_EQ(rels_.classify_link(1000, 100, orgs_), LinkClass::kIspTransit);
  // transit link to a stub customer
  EXPECT_EQ(rels_.classify_link(1000, 10000, orgs_), LinkClass::kStubTransit);
  // peering
  EXPECT_EQ(rels_.classify_link(100, 101, orgs_), LinkClass::kPeer);
  // no transit link on record -> peer (paper §5.4)
  EXPECT_EQ(rels_.classify_link(100, 10000, orgs_), LinkClass::kPeer);
  // AS absent from the dataset -> stub transit (paper §5.4)
  EXPECT_EQ(rels_.classify_link(100, 55, orgs_), LinkClass::kStubTransit);
}

TEST_F(RelationshipsTest, NeighborSets) {
  EXPECT_TRUE(rels_.customers_of(100).contains(1000));
  EXPECT_TRUE(rels_.providers_of(1000).contains(100));
  EXPECT_TRUE(rels_.peers_of(101).contains(100));
  EXPECT_TRUE(rels_.customers_of(999).empty());
}

TEST_F(RelationshipsTest, AllAsesSorted) {
  const std::vector<Asn> all = rels_.all_ases();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_EQ(all.front(), 100u);
  EXPECT_EQ(all.back(), 10000u);
}

TEST_F(RelationshipsTest, Counters) {
  EXPECT_EQ(rels_.transit_count(), 2u);
  EXPECT_EQ(rels_.peering_count(), 1u);
  rels_.add_transit(100, 1000);  // duplicate: no double count
  EXPECT_EQ(rels_.transit_count(), 2u);
}

TEST_F(RelationshipsTest, RejectsDegenerateEdges) {
  EXPECT_THROW(rels_.add_transit(100, 100), mapit::InvariantError);
  EXPECT_THROW(rels_.add_peering(5, 5), mapit::InvariantError);
  EXPECT_THROW(rels_.add_transit(kUnknownAsn, 5), mapit::InvariantError);
}

TEST_F(RelationshipsTest, Serial1RoundTrip) {
  std::stringstream stream;
  rels_.write(stream);
  const AsRelationships reread = AsRelationships::read(stream);
  EXPECT_EQ(reread.relationship(100, 1000), Relationship::kProvider);
  EXPECT_EQ(reread.relationship(100, 101), Relationship::kPeer);
  EXPECT_EQ(reread.transit_count(), rels_.transit_count());
  EXPECT_EQ(reread.peering_count(), rels_.peering_count());
}

TEST(RelationshipsIo, ParsesCaidaSerial1Syntax) {
  std::stringstream stream(
      "# comment\n"
      "1|2|-1\n"
      "3|4|0\n");
  const AsRelationships rels = AsRelationships::read(stream);
  EXPECT_EQ(rels.relationship(1, 2), Relationship::kProvider);
  EXPECT_EQ(rels.relationship(3, 4), Relationship::kPeer);
}

TEST(RelationshipsIo, RejectsUnknownTypeAndGarbage) {
  {
    std::stringstream stream("1|2|7\n");
    EXPECT_THROW(AsRelationships::read(stream), mapit::ParseError);
  }
  {
    std::stringstream stream("1|2\n");
    EXPECT_THROW(AsRelationships::read(stream), mapit::ParseError);
  }
  {
    std::stringstream stream("a|b|-1\n");
    EXPECT_THROW(AsRelationships::read(stream), mapit::ParseError);
  }
}

}  // namespace
}  // namespace mapit::asdata
