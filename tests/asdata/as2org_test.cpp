#include "asdata/as2org.h"

#include <gtest/gtest.h>

#include <sstream>

#include "net/error.h"

namespace mapit::asdata {
namespace {

TEST(As2Org, UnknownAsesAreSingletons) {
  As2Org orgs;
  EXPECT_EQ(orgs.org_of(100), kNoOrg);
  EXPECT_FALSE(orgs.are_siblings(100, 200));
  EXPECT_TRUE(orgs.are_siblings(100, 100));  // self-sibling
  EXPECT_NE(orgs.group_key(100), orgs.group_key(200));
}

TEST(As2Org, AssignGroupsSiblings) {
  As2Org orgs;
  orgs.assign(3356, 1);  // Level3
  orgs.assign(3549, 1);  // Global Crossing (acquired)
  orgs.assign(1299, 2);  // TeliaSonera
  EXPECT_TRUE(orgs.are_siblings(3356, 3549));
  EXPECT_FALSE(orgs.are_siblings(3356, 1299));
  EXPECT_EQ(orgs.group_key(3356), orgs.group_key(3549));
  EXPECT_NE(orgs.group_key(3356), orgs.group_key(1299));
}

TEST(As2Org, GroupKeysNeverCollideBetweenOrgAndSingleton) {
  As2Org orgs;
  orgs.assign(7, 100);
  // The singleton key of ASN 100 must differ from org id 100's key.
  EXPECT_NE(orgs.group_key(7), orgs.group_key(100));
}

TEST(As2Org, SiblingPairWithoutOrgsAllocatesFresh) {
  As2Org orgs;
  orgs.add_sibling_pair(100, 200);
  EXPECT_TRUE(orgs.are_siblings(100, 200));
  EXPECT_NE(orgs.org_of(100), kNoOrg);
}

TEST(As2Org, SiblingPairExtendsExistingOrg) {
  As2Org orgs;
  orgs.assign(100, 7);
  orgs.add_sibling_pair(100, 200);  // 200 joins org 7
  EXPECT_EQ(orgs.org_of(200), 7u);
  orgs.add_sibling_pair(300, 200);  // 300 joins too
  EXPECT_TRUE(orgs.are_siblings(100, 300));
}

TEST(As2Org, SiblingPairMergesTwoOrgs) {
  As2Org orgs;
  orgs.assign(100, 7);
  orgs.assign(101, 7);
  orgs.assign(200, 9);
  orgs.assign(201, 9);
  orgs.add_sibling_pair(100, 200);
  EXPECT_TRUE(orgs.are_siblings(101, 201));  // whole orgs merged
  EXPECT_EQ(orgs.org_of(101), orgs.org_of(201));
}

TEST(As2Org, MembersAreSorted) {
  As2Org orgs;
  orgs.assign(300, 7);
  orgs.assign(100, 7);
  orgs.assign(200, 7);
  orgs.assign(400, 8);
  const std::vector<Asn> members = orgs.members(7);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], 100u);
  EXPECT_EQ(members[2], 300u);
}

TEST(As2Org, AssignRejectsSentinels) {
  As2Org orgs;
  EXPECT_THROW(orgs.assign(kUnknownAsn, 1), mapit::InvariantError);
  EXPECT_THROW(orgs.assign(100, kNoOrg), mapit::InvariantError);
  EXPECT_THROW(orgs.add_sibling_pair(kUnknownAsn, 5), mapit::InvariantError);
}

TEST(As2Org, TextRoundTrip) {
  As2Org orgs;
  orgs.assign(3356, 1);
  orgs.assign(3549, 1);
  orgs.assign(1299, 2);
  std::stringstream stream;
  orgs.write(stream);
  const As2Org reread = As2Org::read(stream);
  EXPECT_TRUE(reread.are_siblings(3356, 3549));
  EXPECT_FALSE(reread.are_siblings(3356, 1299));
  EXPECT_EQ(reread.size(), 3u);
}

TEST(As2Org, ReadRejectsMalformed) {
  {
    std::stringstream stream("3356");  // no separator
    EXPECT_THROW(As2Org::read(stream), mapit::ParseError);
  }
  {
    std::stringstream stream("x|1");
    EXPECT_THROW(As2Org::read(stream), mapit::ParseError);
  }
}

}  // namespace
}  // namespace mapit::asdata
