#include "asdata/ixp.h"

#include <gtest/gtest.h>

#include <sstream>

#include "net/error.h"

namespace mapit::asdata {
namespace {

net::Prefix P(const char* text) { return net::Prefix::parse_or_throw(text); }
net::Ipv4Address A(const char* text) {
  return net::Ipv4Address::parse_or_throw(text);
}

TEST(IxpRegistry, PrefixMembership) {
  IxpRegistry registry;
  registry.add_prefix(P("195.1.0.0/24"), 1);
  registry.add_prefix(P("80.249.208.0/21"), 2);  // AMS-IX style
  EXPECT_TRUE(registry.is_ixp_address(A("195.1.0.55")));
  EXPECT_TRUE(registry.is_ixp_address(A("80.249.210.1")));
  EXPECT_FALSE(registry.is_ixp_address(A("195.1.1.55")));
  ASSERT_NE(registry.lookup(A("195.1.0.55")), nullptr);
  EXPECT_EQ(*registry.lookup(A("195.1.0.55")), 1u);
  EXPECT_EQ(registry.lookup(A("9.9.9.9")), nullptr);
}

TEST(IxpRegistry, IxpAsns) {
  IxpRegistry registry;
  registry.add_ixp_asn(64500);
  EXPECT_TRUE(registry.is_ixp_asn(64500));
  EXPECT_FALSE(registry.is_ixp_asn(64501));
  EXPECT_THROW(registry.add_ixp_asn(kUnknownAsn), mapit::InvariantError);
}

TEST(IxpRegistry, TextRoundTrip) {
  IxpRegistry registry;
  registry.add_prefix(P("195.1.0.0/24"), 1);
  registry.add_prefix(P("195.1.1.0/24"), 2);
  registry.add_ixp_asn(64500);
  std::stringstream stream;
  registry.write(stream);
  const IxpRegistry reread = IxpRegistry::read(stream);
  EXPECT_EQ(reread.prefix_count(), 2u);
  EXPECT_TRUE(reread.is_ixp_address(A("195.1.1.9")));
  EXPECT_TRUE(reread.is_ixp_asn(64500));
}

TEST(IxpRegistry, ReadRejectsGarbage) {
  {
    std::stringstream stream("nonsense\n");
    EXPECT_THROW(IxpRegistry::read(stream), mapit::ParseError);
  }
  {
    std::stringstream stream("195.1.0.0/24|x\n");
    EXPECT_THROW(IxpRegistry::read(stream), mapit::ParseError);
  }
}

}  // namespace
}  // namespace mapit::asdata
