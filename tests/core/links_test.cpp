#include "core/links.h"

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "test_util.h"

namespace mapit::core {
namespace {

using graph::Direction;
using testutil::MiniWorld;

TEST(AggregateLinks, PairsDirectWithItsIndirectMirror) {
  MiniWorld world({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}},
                  {
                      "0|9.9.9.9|1.0.0.10 2.0.0.2",
                      "1|9.9.9.9|1.0.0.10 2.0.0.6",
                  });
  const Result result = world.run();
  const auto links = aggregate_links(result, world.graph());
  // One link: 1.0.0.9/1.0.0.10 with pair {100, 200}, supported by the
  // direct inference and its other-side mirror.
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].low, testutil::addr("1.0.0.9"));
  EXPECT_EQ(links[0].high, testutil::addr("1.0.0.10"));
  EXPECT_EQ(links[0].as_a, 100u);
  EXPECT_EQ(links[0].as_b, 200u);
  EXPECT_EQ(links[0].supporting_inferences, 2u);
  EXPECT_FALSE(links[0].conflicting);
  EXPECT_FALSE(links[0].via_stub_heuristic);
  EXPECT_NEAR(links[0].support_ratio(), 1.0, 1e-9);
}

TEST(AggregateLinks, StubLinksAreFlagged) {
  MiniWorld world({{"12.0.0.0/16", 1200}, {"13.0.0.0/16", 1300}},
                  {
                      "0|13.0.0.77|12.0.0.1 12.0.0.9 13.0.0.77",
                      "1|13.0.0.77|12.0.0.5 12.0.0.9 13.0.0.77",
                  });
  world.relationships().add_transit(1200, 1300);
  const Result result = world.run();
  const auto links = aggregate_links(result, world.graph());
  bool found = false;
  for (const InterAsLink& link : links) {
    if (link.low == testutil::addr("12.0.0.9") ||
        link.high == testutil::addr("12.0.0.9")) {
      found = true;
      EXPECT_TRUE(link.via_stub_heuristic);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AggregateLinks, SortedAndConsistentOnGeneratedWorld) {
  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::small());
  const Result result = experiment->run_mapit({});
  const auto links = aggregate_links(result, experiment->graph());
  ASSERT_FALSE(links.empty());
  for (std::size_t i = 0; i < links.size(); ++i) {
    EXPECT_LT(links[i].low, links[i].high);
    if (i > 0) {
      EXPECT_LT(std::make_pair(links[i - 1].low, links[i - 1].high),
                std::make_pair(links[i].low, links[i].high));
    }
    EXPECT_GE(links[i].supporting_inferences, 1u);
    EXPECT_LE(links[i].supporting_inferences, 4u);
  }
  // Aggregation never exceeds the inference count and compresses mirrors.
  EXPECT_LE(links.size(), result.inferences.size());
}

}  // namespace
}  // namespace mapit::core
