#include "core/result_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "net/error.h"
#include "test_util.h"

namespace mapit::core {
namespace {

using testutil::addr;

std::vector<Inference> sample() {
  return {
      Inference{graph::forward_half(addr("109.105.98.10")), 11537, 2603,
                InferenceKind::kDirect, false, 3, 3},
      Inference{graph::backward_half(addr("199.109.5.1")), 11537, 3754,
                InferenceKind::kDirect, false, 2, 3},
      Inference{graph::backward_half(addr("109.105.98.9")), 2603, 11537,
                InferenceKind::kIndirect, false, 3, 3},
      Inference{graph::forward_half(addr("12.0.0.9")), 1300, 1200,
                InferenceKind::kStub, false, 1, 1},
  };
}

TEST(ResultIo, RoundTrip) {
  const std::vector<Inference> original = sample();
  std::stringstream stream;
  write_inferences(stream, original);
  const std::vector<Inference> reread = read_inferences(stream);
  ASSERT_EQ(reread.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reread[i].half, original[i].half) << i;
    EXPECT_EQ(reread[i].router_as, original[i].router_as) << i;
    EXPECT_EQ(reread[i].other_as, original[i].other_as) << i;
    EXPECT_EQ(reread[i].kind, original[i].kind) << i;
    EXPECT_EQ(reread[i].votes, original[i].votes) << i;
    EXPECT_EQ(reread[i].neighbor_count, original[i].neighbor_count) << i;
  }
}

TEST(ResultIo, LineFormatIsStable) {
  std::stringstream stream;
  write_inferences(stream, {sample()[0]});
  std::string header, line;
  std::getline(stream, header);
  std::getline(stream, line);
  EXPECT_EQ(line, "109.105.98.10|f|11537|2603|direct|3/3");
}

TEST(ResultIo, EmptyList) {
  std::stringstream stream;
  write_inferences(stream, {});
  EXPECT_TRUE(read_inferences(stream).empty());
}

class ResultIoBadInputTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ResultIoBadInputTest, Rejected) {
  std::stringstream stream(GetParam());
  EXPECT_THROW((void)read_inferences(stream), mapit::ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ResultIoBadInputTest,
    ::testing::Values("1.2.3.4|f|1|2|direct",            // missing evidence
                      "1.2.3.4|f|1|2|direct|3/3|extra",  // extra field
                      "1.2.3.4|x|1|2|direct|3/3",        // bad direction
                      "1.2.3.4|f|1|2|maybe|3/3",         // bad kind
                      "1.2.3.4|f|1|2|direct|33",         // bad evidence
                      "1.2.3.4|f|one|2|direct|3/3",      // bad asn
                      "nonsense|f|1|2|direct|3/3",       // bad address
                      "1.2.3.4|f|123abc|2|direct|3/3",   // trailing garbage
                      "1.2.3.4|f| 123|2|direct|3/3",     // leading whitespace
                      "1.2.3.4|f|-1|2|direct|3/3",       // negative asn
                      "1.2.3.4|f|1|2|direct|-1/3",       // negative votes
                      "1.2.3.4|f|1|2|direct|3/3 ",       // trailing whitespace
                      "1.2.3.4|f|1|2|direct|3/",         // empty count
                      "1.2.3.4|f|99999999999999999999|2|direct|3/3",  // overflow
                      "1.2.3.4|f|1|2|direct|4/3"));      // votes > neighbors

TEST(ResultIo, AcceptsCrlfLineEndings) {
  // Files that passed through Windows tooling arrive with \r\n endings;
  // the parser must strip the \r rather than fold it into the last field.
  std::stringstream stream(
      "# comment\r\n"
      "1.2.3.4|f|5|6|direct|2/3\r\n"
      "5.6.7.8|b|7|8|indirect|1/4\r\n");
  const auto inferences = read_inferences(stream);
  ASSERT_EQ(inferences.size(), 2u);
  EXPECT_EQ(inferences[0].neighbor_count, 3u);
  EXPECT_EQ(inferences[1].kind, InferenceKind::kIndirect);
  EXPECT_EQ(inferences[1].neighbor_count, 4u);
}

TEST(ResultIo, AcceptsTrailingBlankLines) {
  std::stringstream stream("1.2.3.4|f|5|6|direct|2/3\n\n\n\r\n");
  const auto inferences = read_inferences(stream);
  ASSERT_EQ(inferences.size(), 1u);
  EXPECT_EQ(inferences[0].router_as, 5u);
}

TEST(ResultIo, WriteReadWriteIsBitIdentical) {
  const std::vector<Inference> original = sample();
  std::stringstream first;
  write_inferences(first, original);
  std::stringstream reread_stream(first.str());
  const std::vector<Inference> reread = read_inferences(reread_stream);
  std::stringstream second;
  write_inferences(second, reread);
  EXPECT_EQ(first.str(), second.str());
}

TEST(ResultIo, SkipsComments) {
  std::stringstream stream("# comment\n\n1.2.3.4|b|5|6|stub|1/1\n");
  const auto inferences = read_inferences(stream);
  ASSERT_EQ(inferences.size(), 1u);
  EXPECT_EQ(inferences[0].kind, InferenceKind::kStub);
  EXPECT_EQ(inferences[0].half.direction, graph::Direction::kBackward);
}

}  // namespace
}  // namespace mapit::core
