// Run supervision: boundary limits, wall-clock deadlines, RSS budgets, the
// stickiness of a stop verdict, and the SignalGuard self-pipe (first-signal
// latching, blocking wait, signal-free wake).
#include "core/supervisor.h"

#include <gtest/gtest.h>

#include <csignal>

#include <chrono>
#include <string>
#include <thread>

namespace mapit::core {
namespace {

TEST(StopReasonTest, NamesEveryReason) {
  EXPECT_EQ(std::string(to_string(StopReason::kNone)), "none");
  EXPECT_EQ(std::string(to_string(StopReason::kSignal)), "signal");
  EXPECT_EQ(std::string(to_string(StopReason::kDeadline)), "deadline");
  EXPECT_EQ(std::string(to_string(StopReason::kMemoryBudget)),
            "memory-budget");
  EXPECT_EQ(std::string(to_string(StopReason::kBoundaryLimit)),
            "boundary-limit");
}

TEST(RunSupervisorTest, NoLimitsNeverStops) {
  RunSupervisor supervisor(SupervisorOptions{});
  for (int i = 0; i < 10; ++i) {
    supervisor.note_boundary();
    EXPECT_EQ(supervisor.should_stop(), StopReason::kNone);
  }
}

TEST(RunSupervisorTest, BoundaryLimitStopsAtTheNthBoundaryAndSticks) {
  RunSupervisor supervisor(SupervisorOptions{.boundary_limit = 2});
  supervisor.note_boundary();
  EXPECT_EQ(supervisor.should_stop(), StopReason::kNone);
  supervisor.note_boundary();
  EXPECT_EQ(supervisor.should_stop(), StopReason::kBoundaryLimit);
  // Sticky: the verdict never un-decides, whatever happens later.
  EXPECT_EQ(supervisor.should_stop(), StopReason::kBoundaryLimit);
}

TEST(RunSupervisorTest, GenerousDeadlineDoesNotTrip) {
  RunSupervisor supervisor(SupervisorOptions{.deadline_seconds = 3600});
  supervisor.note_boundary();
  EXPECT_EQ(supervisor.should_stop(), StopReason::kNone);
  EXPECT_GE(supervisor.elapsed_seconds(), 0.0);
}

TEST(RunSupervisorTest, ExpiredDeadlineStopsTheRun) {
  RunSupervisor supervisor(SupervisorOptions{.deadline_seconds = 1e-9});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(supervisor.should_stop(), StopReason::kDeadline);
}

TEST(RunSupervisorTest, TinyMemoryBudgetStopsTheRun) {
  // Any running test process dwarfs a 1 MiB budget; the boundary poll must
  // observe the breach even without waiting for the watchdog.
  RunSupervisor supervisor(SupervisorOptions{.memory_budget_mb = 1});
  EXPECT_EQ(supervisor.should_stop(), StopReason::kMemoryBudget);
}

TEST(RunSupervisorTest, GenerousMemoryBudgetDoesNotTrip) {
  RunSupervisor supervisor(
      SupervisorOptions{.memory_budget_mb = std::size_t{1} << 24});
  EXPECT_EQ(supervisor.should_stop(), StopReason::kNone);
}

TEST(RunSupervisorTest, DeadlineOutranksBoundaryLimit) {
  RunSupervisor supervisor(SupervisorOptions{.deadline_seconds = 1e-9,
                                             .boundary_limit = 1});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  supervisor.note_boundary();
  EXPECT_EQ(supervisor.should_stop(), StopReason::kDeadline);
}

TEST(RunSupervisorTest, WatchdogSamplesWhileTheRunIsMidPass) {
  // Simulate a long pass: no boundary polls while the watchdog thread runs
  // a few of its 100ms samples. The breach it recorded is delivered (and
  // the peak-RSS fold has happened) at the next boundary poll.
  RunSupervisor supervisor(SupervisorOptions{.memory_budget_mb = 1});
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(supervisor.should_stop(), StopReason::kMemoryBudget);
  EXPECT_GT(supervisor.peak_rss_bytes(), std::size_t{1} << 20);
}

TEST(RunSupervisorTest, ReportsCurrentAndPeakRss) {
  const std::size_t rss = current_rss_bytes();
  ASSERT_GT(rss, 0u) << "/proc/self/statm should be readable on Linux";
  RunSupervisor supervisor(SupervisorOptions{});
  EXPECT_GT(supervisor.peak_rss_bytes(), 0u);
}

TEST(SignalGuardTest, WakeUnblocksAWaiterWithoutASignal) {
  SignalGuard guard;
  int waited = -1;
  std::thread waiter([&] { waited = guard.wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  guard.wake();
  waiter.join();
  EXPECT_EQ(waited, 0);
}

TEST(SignalGuardTest, LatchesTheFirstSignalAndWakesWaiters) {
  SignalGuard guard;
  EXPECT_EQ(SignalGuard::signal_received(), 0);
  int waited = -1;
  std::thread waiter([&] { waited = guard.wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(::raise(SIGTERM), 0);  // caught by the guard, not fatal
  waiter.join();
  EXPECT_EQ(waited, SIGTERM);
  EXPECT_EQ(SignalGuard::signal_received(), SIGTERM);
  // A second signal while draining must not overwrite the first.
  ASSERT_EQ(::raise(SIGINT), 0);
  EXPECT_EQ(SignalGuard::signal_received(), SIGTERM);
}

TEST(SignalGuardTest, AFreshGuardStartsWithNoPendingSignal) {
  // The previous test latched SIGTERM; constructing a new guard (only one
  // may exist at a time) must reset the latch.
  SignalGuard guard;
  EXPECT_EQ(SignalGuard::signal_received(), 0);
}

TEST(SignalGuardTest, SupervisorStopsOnAReceivedSignal) {
  SignalGuard guard;
  RunSupervisor supervisor(SupervisorOptions{}, &guard);
  EXPECT_EQ(supervisor.should_stop(), StopReason::kNone);
  ASSERT_EQ(::raise(SIGINT), 0);
  EXPECT_EQ(supervisor.should_stop(), StopReason::kSignal);
  EXPECT_EQ(supervisor.should_stop(), StopReason::kSignal);
}

}  // namespace
}  // namespace mapit::core
