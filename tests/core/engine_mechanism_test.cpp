// Mechanism-level tests for individual engine rules: the f threshold,
// plurality strictness, sibling handling, unannounced neighbours, IXP
// behaviour, the stub heuristic's guards, and option toggles.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "net/error.h"
#include "test_util.h"

namespace mapit::core {
namespace {

using graph::Direction;
using testutil::addr;
using testutil::MiniWorld;
using testutil::find_inference;

// N_F(1.0.0.10) = {2.0.0.2, 2.0.0.6, 3.0.0.2}: AS200 holds 2/3.
MiniWorld two_thirds_world() {
  return MiniWorld(
      {{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}, {"3.0.0.0/16", 300}},
      {
          "0|9.9.9.9|1.0.0.10 2.0.0.2",
          "1|9.9.9.9|1.0.0.10 2.0.0.6",
          "2|9.9.9.9|1.0.0.10 3.0.0.2",
      });
}

TEST(EngineMechanism, FractionThresholdGatesInference) {
  for (double f : {0.0, 0.5, 2.0 / 3.0}) {
    MiniWorld world = two_thirds_world();
    Options options;
    options.f = f;
    const Result result = world.run(options);
    EXPECT_NE(find_inference(result, "1.0.0.10", Direction::kForward), nullptr)
        << "f=" << f;
  }
  for (double f : {0.7, 0.9, 1.0}) {
    MiniWorld world = two_thirds_world();
    Options options;
    options.f = f;
    const Result result = world.run(options);
    EXPECT_EQ(find_inference(result, "1.0.0.10", Direction::kForward), nullptr)
        << "f=" << f;
  }
}

TEST(EngineMechanism, PluralityMustBeStrict) {
  // 2-2 split between AS200 and AS300: no AS appears more than all others.
  MiniWorld world(
      {{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}, {"3.0.0.0/16", 300}},
      {
          "0|9.9.9.9|1.0.0.10 2.0.0.2",
          "1|9.9.9.9|1.0.0.10 2.0.0.6",
          "2|9.9.9.9|1.0.0.10 3.0.0.2",
          "3|9.9.9.9|1.0.0.10 3.0.0.6",
      });
  const Result result = world.run();
  EXPECT_EQ(find_inference(result, "1.0.0.10", Direction::kForward), nullptr);
}

TEST(EngineMechanism, SingleNeighborNeverInfersDirectly) {
  // §4.3: a direct inference needs at least two neighbour addresses. (The
  // stub heuristic is the one sanctioned single-neighbour path, §4.8 —
  // disabled here to isolate the direct rule.)
  MiniWorld world({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}},
                  {"0|9.9.9.9|1.0.0.10 2.0.0.2"});
  Options options;
  options.stub_heuristic = false;
  const Result result = world.run(options);
  EXPECT_EQ(find_inference(result, "1.0.0.10", Direction::kForward), nullptr);
}

TEST(EngineMechanism, NoInferenceWhenMajorityIsOwnAs) {
  MiniWorld world({{"1.0.0.0/16", 100}},
                  {
                      "0|9.9.9.9|1.0.0.10 1.0.0.2",
                      "1|9.9.9.9|1.0.0.10 1.0.0.6",
                  });
  const Result result = world.run();
  EXPECT_TRUE(result.inferences.empty());
}

TEST(EngineMechanism, SiblingsCountAsOneAs) {
  // AS201 and AS202 are siblings; individually neither beats AS300, but
  // grouped they dominate. The representative is the more frequent member.
  MiniWorld world(
      {{"1.0.0.0/16", 100},
       {"2.0.0.0/16", 201},
       {"2.1.0.0/16", 202},
       {"3.0.0.0/16", 300}},
      {
          "0|9.9.9.9|1.0.0.10 2.0.0.2",
          "1|9.9.9.9|1.0.0.10 2.1.0.2",
          "2|9.9.9.9|1.0.0.10 2.1.0.6",
          "3|9.9.9.9|1.0.0.10 3.0.0.2",
          "4|9.9.9.9|1.0.0.10 3.0.0.6",
      });
  world.orgs().add_sibling_pair(201, 202);
  const Result result = world.run();
  const Inference* inference =
      find_inference(result, "1.0.0.10", Direction::kForward);
  ASSERT_NE(inference, nullptr);
  EXPECT_EQ(inference->router_as, 202u);  // most frequent sibling
}

TEST(EngineMechanism, SiblingGroupingCanBeDisabled) {
  MiniWorld world(
      {{"1.0.0.0/16", 100},
       {"2.0.0.0/16", 201},
       {"2.1.0.0/16", 202},
       {"3.0.0.0/16", 300}},
      {
          "0|9.9.9.9|1.0.0.10 2.0.0.2",
          "1|9.9.9.9|1.0.0.10 2.1.0.2",
          "2|9.9.9.9|1.0.0.10 2.1.0.6",
          "3|9.9.9.9|1.0.0.10 3.0.0.2",
          "4|9.9.9.9|1.0.0.10 3.0.0.6",
      });
  world.orgs().add_sibling_pair(201, 202);
  Options options;
  options.sibling_grouping = false;
  options.f = 0.5;
  // Ungrouped: AS202 has 2 votes = AS300's 2 votes -> tie -> nothing.
  const Result result = world.run(options);
  EXPECT_EQ(find_inference(result, "1.0.0.10", Direction::kForward), nullptr);
}

TEST(EngineMechanism, NoInterSiblingInference) {
  // The dominating AS is a sibling of the interface's own AS: the border
  // between siblings is not inferred (§4.9).
  MiniWorld world({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}},
                  {
                      "0|9.9.9.9|1.0.0.10 2.0.0.2",
                      "1|9.9.9.9|1.0.0.10 2.0.0.6",
                  });
  world.orgs().add_sibling_pair(100, 200);
  const Result result = world.run();
  EXPECT_EQ(find_inference(result, "1.0.0.10", Direction::kForward), nullptr);
}

TEST(EngineMechanism, UnannouncedNeighborsDiluteTheFraction) {
  // N_F = {2.0.0.2 (AS200), 66.0.0.2 (unannounced), 66.0.0.6 (unannounced)}:
  // AS200 is the strict plurality, but only 1/3 of |N|.
  MiniWorld world({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}},
                  {
                      "0|9.9.9.9|1.0.0.10 2.0.0.2",
                      "1|9.9.9.9|1.0.0.10 66.0.0.2",
                      "2|9.9.9.9|1.0.0.10 66.0.0.6",
                  });
  Options options;
  options.f = 0.5;
  const Result result = world.run(options);
  EXPECT_EQ(find_inference(result, "1.0.0.10", Direction::kForward), nullptr);
  // With a permissive f the strict plurality suffices. The §4.5 majority
  // remove rule would take the inference back (1 of 3 is under half), so
  // observe it under the add-rule variant.
  Options loose;
  loose.f = 0.0;
  loose.remove_rule = RemoveRule::kAddRule;
  const Result result2 = world.run(loose);
  const Inference* inference =
      find_inference(result2, "1.0.0.10", Direction::kForward);
  ASSERT_NE(inference, nullptr);
  EXPECT_EQ(inference->router_as, 200u);
}

TEST(EngineMechanism, UnannouncedInterfaceCanStillBeInferred) {
  // §4.4.3: interfaces without IP2AS mappings receive inferences (they
  // enable later updates); the pair's other side is simply unknown.
  MiniWorld world({{"2.0.0.0/16", 200}},
                  {
                      "0|9.9.9.9|66.0.0.10 2.0.0.2",
                      "1|9.9.9.9|66.0.0.10 2.0.0.6",
                  });
  const Result result = world.run();
  const Inference* inference =
      find_inference(result, "66.0.0.10", Direction::kForward);
  ASSERT_NE(inference, nullptr);
  EXPECT_EQ(inference->router_as, 200u);
  EXPECT_EQ(inference->other_as, asdata::kUnknownAsn);
  EXPECT_FALSE(inference->complete());
}

TEST(EngineMechanism, IxpInterfaceSkipsOtherSideUpdate) {
  // Footnote 7: inferences on known-IXP interfaces do not propagate to a
  // /30-/31 "other side" (IXP LANs are multipoint).
  MiniWorld world({{"2.0.0.0/16", 200}},
                  {
                      "0|9.9.9.9|195.1.0.9 2.0.0.2",
                      "1|9.9.9.9|195.1.0.9 2.0.0.6",
                  });
  world.ixps().add_prefix(testutil::pfx("195.1.0.0/24"), 1);
  const Result result = world.run();
  // The IXP address itself is inferred...
  ASSERT_NE(find_inference(result, "195.1.0.9", Direction::kForward), nullptr);
  // ...but no indirect inference lands on 195.1.0.10 (its /30 partner).
  EXPECT_EQ(find_inference(result, "195.1.0.10", Direction::kBackward),
            nullptr);
}

TEST(EngineMechanism, OtherSideUpdatesCanBeDisabled) {
  MiniWorld world({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}},
                  {
                      "0|9.9.9.9|1.0.0.10 2.0.0.2",
                      "1|9.9.9.9|1.0.0.10 2.0.0.6",
                  });
  Options options;
  options.update_other_sides = false;
  const Result result = world.run(options);
  EXPECT_NE(find_inference(result, "1.0.0.10", Direction::kForward), nullptr);
  EXPECT_EQ(find_inference(result, "1.0.0.9", Direction::kBackward), nullptr);
}

// ---------------------------------------------------------------------------
// Stub heuristic (§4.8).
// ---------------------------------------------------------------------------

MiniWorld stub_world() {
  // 12.0.0.9 (provider AS1200) always precedes the single stub address
  // 13.0.0.77 (AS1300, e.g. a NAT). N_B(12.0.0.9) stays inside AS1200.
  MiniWorld world({{"12.0.0.0/16", 1200}, {"13.0.0.0/16", 1300}},
                  {
                      "0|13.0.0.77|12.0.0.1 12.0.0.9 13.0.0.77",
                      "1|13.0.0.77|12.0.0.5 12.0.0.9 13.0.0.77",
                  });
  world.relationships().add_transit(1200, 1300);
  return world;
}

TEST(EngineMechanism, StubHeuristicInfersLowVisibilityLink) {
  MiniWorld world = stub_world();
  const Result result = world.run();
  const Inference* inference =
      find_inference(result, "12.0.0.9", Direction::kForward);
  ASSERT_NE(inference, nullptr);
  EXPECT_EQ(inference->kind, InferenceKind::kStub);
  EXPECT_EQ(inference->router_as, 1300u);
  EXPECT_EQ(inference->other_as, 1200u);
  EXPECT_EQ(result.stats.stub_inferences, 1u);
  // The other side (12.0.0.10) carries the mirrored indirect inference.
  const Inference* indirect =
      find_inference(result, "12.0.0.10", Direction::kBackward);
  ASSERT_NE(indirect, nullptr);
  EXPECT_EQ(indirect->kind, InferenceKind::kIndirect);
}

TEST(EngineMechanism, StubHeuristicRequiresStubAs) {
  MiniWorld world = stub_world();
  // Give AS1300 a customer: it is no longer a stub.
  world.relationships().add_transit(1300, 9999);
  const Result result = world.run();
  EXPECT_EQ(find_inference(result, "12.0.0.9", Direction::kForward), nullptr);
  EXPECT_EQ(result.stats.stub_inferences, 0u);
}

TEST(EngineMechanism, StubHeuristicSkipsSiblings) {
  MiniWorld world = stub_world();
  world.orgs().add_sibling_pair(1200, 1300);
  const Result result = world.run();
  EXPECT_EQ(result.stats.stub_inferences, 0u);
}

TEST(EngineMechanism, StubHeuristicSkipsMultiNeighborHalves) {
  // |N_F| must be exactly one.
  MiniWorld world({{"12.0.0.0/16", 1200}, {"13.0.0.0/16", 1300}},
                  {
                      "0|13.0.0.77|12.0.0.1 12.0.0.9 13.0.0.77",
                      "1|13.0.0.77|12.0.0.5 12.0.0.9 13.0.0.78",
                  });
  const Result result = world.run();
  EXPECT_EQ(result.stats.stub_inferences, 0u);
}

TEST(EngineMechanism, StubHeuristicSkipsWhenNeighborHasInference) {
  // A backward inference already exists on the neighbour: the link was
  // found the normal way and the heuristic must stand down.
  MiniWorld world({{"12.0.0.0/16", 1200}, {"13.0.0.0/16", 1300}},
                  {
                      "0|13.0.0.77|12.0.0.1 12.0.0.9 13.0.0.77",
                      "1|13.0.0.77|12.0.0.5 12.0.0.9 13.0.0.77",
                      // expose a second predecessor of 13.0.0.77 so a
                      // normal backward inference fires on it
                      "2|13.0.0.77|12.0.0.13 13.0.0.77",
                  });
  world.relationships().add_transit(1200, 1300);
  const Result result = world.run();
  const Inference* backward =
      find_inference(result, "13.0.0.77", Direction::kBackward);
  ASSERT_NE(backward, nullptr);
  EXPECT_EQ(backward->kind, InferenceKind::kDirect);
  EXPECT_EQ(result.stats.stub_inferences, 0u);
}

TEST(EngineMechanism, StubHeuristicCanBeDisabled) {
  MiniWorld world = stub_world();
  Options options;
  options.stub_heuristic = false;
  const Result result = world.run(options);
  EXPECT_TRUE(result.inferences.empty());
}

// ---------------------------------------------------------------------------
// Remove-step demotion (§4.5).
// ---------------------------------------------------------------------------

// A half whose direct inference is demoted may already carry a live
// indirect inference propagated from the other side's direct inference.
// Demotion must not clobber it: the demoted half keeps the other side's
// mapping, not a stale copy of its own withdrawn one.
//
// The world: X = {11.0.0.1, forward} first wins a direct inference for
// AS200 (both forward neighbours are 20.0.0.x). Its /30 other side
// O = {11.0.0.2, backward} wins a direct inference for AS400 (both
// backward neighbours are 40.0.0.x) and propagates 400 onto X as an
// indirect inference. The remove step then withdraws X's direct inference
// (its neighbours' refined mappings split 300/350, so AS200 gets no
// votes) while O's survives — so X's mapping must revert to O's 400.
MiniWorld demotion_world() {
  return MiniWorld({{"11.0.0.0/16", 100},
                    {"20.0.0.0/16", 200},
                    {"30.0.0.0/16", 300},
                    {"35.0.0.0/16", 350},
                    {"40.0.0.0/16", 400}},
                   {
                       "0|9.9.9.9|11.0.0.1 20.0.0.2",
                       "1|9.9.9.9|11.0.0.1 20.0.0.6",
                       "2|9.9.9.9|30.0.0.2 20.0.0.2",
                       "3|9.9.9.9|30.0.0.6 20.0.0.2",
                       "4|9.9.9.9|35.0.0.2 20.0.0.6",
                       "5|9.9.9.9|35.0.0.6 20.0.0.6",
                       "6|9.9.9.9|40.0.0.2 11.0.0.2",
                       "7|9.9.9.9|40.0.0.6 11.0.0.2",
                   });
}

TEST(EngineMechanism, DemotionPreservesLiveIndirectInference) {
  MiniWorld world = demotion_world();
  const Result result = world.run();

  // The other side's direct inference survives the remove step…
  const Inference* other = find_inference(result, "11.0.0.2",
                                          Direction::kBackward);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->router_as, 400u);

  // …so the demoted half must end up mapped to its AS400, not keep a
  // stale copy of its own withdrawn AS200 inference.
  const graph::InterfaceHalf x{addr("11.0.0.1"), Direction::kForward};
  ASSERT_TRUE(result.final_mappings.contains(x));
  EXPECT_EQ(result.final_mappings.at(x), 400u);
}

TEST(EngineMechanism, DemotionsAndRemovalsAreCounted) {
  MiniWorld world = demotion_world();
  const Result result = world.run();
  // X's direct inference is demoted; the indirect inference X had earlier
  // propagated onto O dies with it in the same remove step.
  EXPECT_EQ(result.stats.demoted_in_remove_step, 1u);
  EXPECT_EQ(result.stats.removed_in_remove_step, 1u);
}

// ---------------------------------------------------------------------------
// Determinism and bookkeeping.
// ---------------------------------------------------------------------------

TEST(EngineMechanism, RunIsIdempotent) {
  MiniWorld world = two_thirds_world();
  world.freeze();
  Engine engine(world.graph(), world.ip2as(), world.orgs(),
                world.relationships(), Options{});
  const Result first = engine.run();
  const Result second = engine.run();
  EXPECT_EQ(first.inferences, second.inferences);
  EXPECT_EQ(first.uncertain, second.uncertain);
}

TEST(EngineMechanism, OptionsValidation) {
  MiniWorld world = two_thirds_world();
  world.freeze();
  Options bad_f;
  bad_f.f = 1.5;
  EXPECT_THROW((Engine(world.graph(), world.ip2as(), world.orgs(),
                       world.relationships(), bad_f)),
               mapit::InvariantError);
  Options bad_iters;
  bad_iters.max_iterations = 0;
  EXPECT_THROW((Engine(world.graph(), world.ip2as(), world.orgs(),
                       world.relationships(), bad_iters)),
               mapit::InvariantError);
}

TEST(EngineMechanism, SnapshotsFollowPipelineOrder) {
  MiniWorld world = two_thirds_world();
  Options options;
  options.capture_snapshots = true;
  const Result result = world.run(options);
  ASSERT_GE(result.snapshots.size(), 5u);
  EXPECT_EQ(result.snapshots[0].label, "Direct");
  EXPECT_EQ(result.snapshots[1].label, "P2P");
  EXPECT_EQ(result.snapshots[2].label, "Inverse");
  EXPECT_EQ(result.snapshots[3].label, "Add");
  EXPECT_EQ(result.snapshots.back().label, "Stub");
}

TEST(EngineMechanism, NoSnapshotsByDefault) {
  MiniWorld world = two_thirds_world();
  const Result result = world.run();
  EXPECT_TRUE(result.snapshots.empty());
}

TEST(EngineMechanism, ResultLookupHelpers) {
  MiniWorld world = two_thirds_world();
  const Result result = world.run();
  EXPECT_FALSE(result.find_address(testutil::addr("1.0.0.10")).empty());
  EXPECT_TRUE(result.find_address(testutil::addr("77.0.0.1")).empty());
}

TEST(EngineMechanism, InferenceToString) {
  Inference inference{graph::forward_half(testutil::addr("1.0.0.10")), 200,
                      100, InferenceKind::kDirect, false};
  EXPECT_EQ(inference.to_string(), "1.0.0.10_f: AS200 <-> AS100 (direct)");
  inference.uncertain = true;
  inference.kind = InferenceKind::kStub;
  EXPECT_EQ(inference.to_string(),
            "1.0.0.10_f: AS200 <-> AS100 (stub, uncertain)");
}

}  // namespace
}  // namespace mapit::core
