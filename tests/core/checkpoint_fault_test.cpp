// Checkpoint crash matrix: a crash, ENOSPC, short write, or failed
// rename/fsync at ANY injected syscall of write_checkpoint must leave the
// checkpoint path holding either the complete previous checkpoint or the
// complete new one — CRC-valid and fully readable — never a torn file.
// This is the write-side half of the ISSUE's kill-at-any-point guarantee;
// the engine-level kill-at-every-boundary matrix lives in
// tests/integration/checkpoint_resume_test.cpp and tools/ci.sh.
#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <string>

#include "fault/plan.h"
#include "net/error.h"

namespace mapit::core {
namespace {

namespace fs = std::filesystem;

Checkpoint checkpoint_a() {
  Checkpoint ckpt;
  ckpt.meta.config_hash = 0xAAAAAAAAAAAAAAAAull;
  ckpt.meta.corpus_fingerprint = 1;
  ckpt.meta.rib_fingerprint = 2;
  ckpt.meta.datasets_fingerprint = 3;
  ckpt.boundary = RunBoundary::kAfterAddStep;
  ckpt.iterations_done = 1;
  ckpt.engine_state = std::string(64, 'a');
  return ckpt;
}

/// A different, larger checkpoint so old/new are distinguishable by size
/// and content, and a torn mix of the two cannot masquerade as either.
Checkpoint checkpoint_b() {
  Checkpoint ckpt = checkpoint_a();
  ckpt.boundary = RunBoundary::kAfterIteration;
  ckpt.iterations_done = 2;
  ckpt.engine_state = std::string(200, 'b');
  return ckpt;
}

class CheckpointFaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mapit_checkpoint_fault_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    path_ = checkpoint_path(dir_.string());
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Reads + fully validates the destination checkpoint (magic, version,
  /// size, CRC, payload structure). Any tear throws CheckpointError.
  [[nodiscard]] std::string destination_state() {
    return read_checkpoint(path_).engine_state;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(CheckpointFaultMatrixTest, CrashAtEveryInjectionPoint) {
  write_checkpoint(path_, checkpoint_a());

  // Counting pass over a clean rewrite: every syscall it issues is an
  // injection point for the matrix below.
  fault::FaultPlan counter;
  write_checkpoint(path_, checkpoint_b(), counter);
  ASSERT_EQ(destination_state(), checkpoint_b().engine_state);

  const fault::Op kOps[] = {fault::Op::kOpen, fault::Op::kWrite,
                            fault::Op::kFsync, fault::Op::kRename,
                            fault::Op::kClose};
  int crash_points = 0;
  for (const fault::Op op : kOps) {
    for (std::uint64_t nth = 1; nth <= counter.calls(op); ++nth) {
      write_checkpoint(path_, checkpoint_a());  // reset: destination = old
      fault::FaultPlan plan;
      plan.add(fault::Fault{.op = op, .nth = nth, .crash = true});
      EXPECT_THROW(write_checkpoint(path_, checkpoint_b(), plan),
                   fault::InjectedCrash)
          << to_string(op) << " call " << nth;
      ++crash_points;
      std::string state;
      ASSERT_NO_THROW(state = destination_state())
          << "torn checkpoint after crash at " << to_string(op) << " call "
          << nth;
      EXPECT_TRUE(state == checkpoint_a().engine_state ||
                  state == checkpoint_b().engine_state)
          << "destination is neither old nor new after crash at "
          << to_string(op) << " call " << nth;
    }
  }
  EXPECT_GE(crash_points, 5);
}

TEST_F(CheckpointFaultMatrixTest, ShortWritesPlusCrashNeverTear) {
  write_checkpoint(path_, checkpoint_a());
  // Dribble the bytes out 7 per write, then crash mid-stream: the partial
  // temp file must never reach the checkpoint name.
  for (const std::uint64_t crash_at : {2u, 5u, 9u}) {
    fault::FaultPlan plan;
    plan.add(fault::Fault{.op = fault::Op::kWrite, .nth = 1,
                          .repeat = crash_at - 1, .short_bytes = 7});
    plan.add(fault::Fault{.op = fault::Op::kWrite, .nth = crash_at,
                          .crash = true});
    EXPECT_THROW(write_checkpoint(path_, checkpoint_b(), plan),
                 fault::InjectedCrash);
    std::string state;
    ASSERT_NO_THROW(state = destination_state())
        << "crash at write " << crash_at;
    EXPECT_EQ(state, checkpoint_a().engine_state);
  }
}

TEST_F(CheckpointFaultMatrixTest, EnospcAndFailedRenameKeepOldCheckpoint) {
  write_checkpoint(path_, checkpoint_a());
  struct Case {
    fault::Op op;
    int err;
  };
  for (const Case& c : {Case{fault::Op::kWrite, ENOSPC},
                        Case{fault::Op::kFsync, EIO},
                        Case{fault::Op::kRename, EXDEV}}) {
    fault::FaultPlan plan;
    plan.add(fault::Fault{.op = c.op, .nth = 1, .inject_errno = c.err});
    EXPECT_THROW(write_checkpoint(path_, checkpoint_b(), plan), Error)
        << to_string(c.op);
    EXPECT_EQ(destination_state(), checkpoint_a().engine_state)
        << to_string(c.op);
    // The errno path cleans its temp file: only the checkpoint remains.
    EXPECT_EQ(std::distance(fs::directory_iterator(dir_),
                            fs::directory_iterator{}),
              1)
        << to_string(c.op);
  }
}

TEST_F(CheckpointFaultMatrixTest, EintrDuringWriteIsInvisible) {
  write_checkpoint(path_, checkpoint_a());
  fault::FaultPlan plan;
  plan.add(fault::Fault{.op = fault::Op::kWrite, .nth = 1,
                        .inject_errno = EINTR});
  write_checkpoint(path_, checkpoint_b(), plan);
  EXPECT_EQ(destination_state(), checkpoint_b().engine_state);
}

TEST_F(CheckpointFaultMatrixTest, ReaderSurfacesOpenAndReadFailures) {
  write_checkpoint(path_, checkpoint_a());
  {
    fault::FaultPlan plan;
    plan.add(fault::Fault{.op = fault::Op::kOpen, .nth = 1,
                          .inject_errno = EMFILE});
    EXPECT_THROW((void)read_checkpoint(path_, plan), CheckpointError);
  }
  {
    fault::FaultPlan plan;
    plan.add(fault::Fault{.op = fault::Op::kRead, .nth = 1,
                          .inject_errno = EIO});
    EXPECT_THROW((void)read_checkpoint(path_, plan), CheckpointError);
  }
  // EINTR and short reads are absorbed by the read loop.
  {
    fault::FaultPlan plan;
    plan.add(fault::Fault{.op = fault::Op::kRead, .nth = 1,
                          .inject_errno = EINTR});
    plan.add(fault::Fault{.op = fault::Op::kRead, .nth = 2, .repeat = 100,
                          .short_bytes = 13});
    EXPECT_EQ(read_checkpoint(path_, plan).engine_state,
              checkpoint_a().engine_state);
  }
}

}  // namespace
}  // namespace mapit::core
