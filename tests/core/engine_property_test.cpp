// Property sweeps for the engine over generated worlds: determinism,
// convergence, output well-formedness, and cross-option relationships.
#include <gtest/gtest.h>

#include <set>

#include "baselines/claims.h"
#include "core/engine.h"
#include "eval/experiment.h"

namespace mapit::core {
namespace {

eval::ExperimentConfig config_for_seed(std::uint64_t seed) {
  eval::ExperimentConfig config = eval::ExperimentConfig::small();
  config.topology.seed = seed;
  config.simulation.seed = seed ^ 0xFEEDu;
  config.dataset_seed = seed ^ 0xBEEFu;
  return config;
}

class EnginePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnginePropertyTest, DeterministicAcrossIndependentRuns) {
  const auto a = eval::Experiment::build(config_for_seed(GetParam()));
  const auto b = eval::Experiment::build(config_for_seed(GetParam()));
  Options options;
  options.f = 0.5;
  const Result ra = a->run_mapit(options);
  const Result rb = b->run_mapit(options);
  EXPECT_EQ(ra.inferences, rb.inferences);
  EXPECT_EQ(ra.uncertain, rb.uncertain);
  EXPECT_EQ(ra.stats.iterations, rb.stats.iterations);
}

TEST_P(EnginePropertyTest, ConvergesWithinBound) {
  const auto experiment = eval::Experiment::build(config_for_seed(GetParam()));
  Options options;
  options.f = 0.5;
  const Result result = experiment->run_mapit(options);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_LE(result.stats.iterations, options.max_iterations);
  // The paper reports convergence in 3 iterations; allow slack but catch
  // runaway dynamics.
  EXPECT_LE(result.stats.iterations, 10);
}

TEST_P(EnginePropertyTest, OutputsAreWellFormed) {
  const auto experiment = eval::Experiment::build(config_for_seed(GetParam()));
  Options options;
  options.f = 0.5;
  const Result result = experiment->run_mapit(options);

  std::set<graph::InterfaceHalf> seen;
  for (const Inference& inference : result.inferences) {
    EXPECT_FALSE(inference.uncertain);
    if (inference.kind != InferenceKind::kIndirect) {
      // Direct/stub inferences always name the dominating AS; an indirect
      // mirror can carry kUnknownAsn when its source's address space is
      // unannounced.
      EXPECT_NE(inference.router_as, asdata::kUnknownAsn);
    }
    // At most one confident inference per interface half.
    EXPECT_TRUE(seen.insert(inference.half).second)
        << inference.to_string();
    // Sorted by (address, direction).
  }
  for (std::size_t i = 1; i < result.inferences.size(); ++i) {
    EXPECT_LE(result.inferences[i - 1].half, result.inferences[i].half);
  }
  for (const Inference& inference : result.uncertain) {
    EXPECT_TRUE(inference.uncertain);
  }
}

TEST_P(EnginePropertyTest, DirectInferencesNeverSitOnOwnAsMajority) {
  // Structural soundness: every direct inference names a router AS whose
  // sibling group differs from the interface's base origin group.
  const auto experiment = eval::Experiment::build(config_for_seed(GetParam()));
  Options options;
  options.f = 0.5;
  const Result result = experiment->run_mapit(options);
  const auto& orgs = experiment->orgs();
  for (const Inference& inference : result.inferences) {
    if (inference.kind != InferenceKind::kDirect) continue;
    const asdata::Asn own =
        experiment->ip2as().origin(inference.half.address);
    if (own == asdata::kUnknownAsn) continue;
    EXPECT_NE(orgs.group_key(inference.router_as), orgs.group_key(own))
        << inference.to_string();
    EXPECT_EQ(inference.other_as, own) << inference.to_string();
  }
}

TEST_P(EnginePropertyTest, StubInferencesOnlyNameStubAses) {
  const auto experiment = eval::Experiment::build(config_for_seed(GetParam()));
  const Result result = experiment->run_mapit({});
  for (const Inference& inference : result.inferences) {
    if (inference.kind != InferenceKind::kStub) continue;
    EXPECT_TRUE(experiment->relationships().is_stub(inference.router_as))
        << inference.to_string();
  }
}

TEST_P(EnginePropertyTest, HigherFNeverAddsStublessDirectInferences) {
  // f only gates direct inferences; with the multipass dynamics the final
  // sets are not strictly nested, but the very first Direct snapshot is:
  // every f=0.9 first-pass inference must also fire at f=0.1.
  const auto experiment = eval::Experiment::build(config_for_seed(GetParam()));
  Options strict;
  strict.f = 0.9;
  strict.capture_snapshots = true;
  Options loose;
  loose.f = 0.1;
  loose.capture_snapshots = true;
  const Result rs = experiment->run_mapit(strict);
  const Result rl = experiment->run_mapit(loose);
  ASSERT_FALSE(rs.snapshots.empty());
  ASSERT_FALSE(rl.snapshots.empty());
  ASSERT_EQ(rs.snapshots[0].label, "Direct");
  std::set<std::tuple<graph::InterfaceHalf, asdata::Asn, asdata::Asn>> loose_set;
  for (const Inference& inference : rl.snapshots[0].inferences) {
    if (inference.kind == InferenceKind::kIndirect) continue;
    loose_set.insert({inference.half, inference.router_as, inference.other_as});
  }
  for (const Inference& inference : rs.snapshots[0].inferences) {
    if (inference.kind == InferenceKind::kIndirect) continue;
    EXPECT_TRUE(loose_set.contains(
        {inference.half, inference.router_as, inference.other_as}))
        << inference.to_string();
  }
}

TEST_P(EnginePropertyTest, ClaimsAreDeduplicatedAndComplete) {
  const auto experiment = eval::Experiment::build(config_for_seed(GetParam()));
  const Result result = experiment->run_mapit({});
  const baselines::Claims claims = baselines::claims_from_result(result);
  for (std::size_t i = 1; i < claims.size(); ++i) {
    EXPECT_LT(claims[i - 1], claims[i]);  // sorted + unique
  }
  // Claims carry only direct/stub evidence (DESIGN.md §5): every claim
  // address must have a non-indirect confident inference behind it.
  std::set<net::Ipv4Address> evidenced;
  for (const Inference& inference : result.inferences) {
    if (inference.kind != InferenceKind::kIndirect) {
      evidenced.insert(inference.half.address);
    }
  }
  for (const baselines::Claim& claim : claims) {
    EXPECT_NE(claim.a, asdata::kUnknownAsn);
    EXPECT_NE(claim.b, asdata::kUnknownAsn);
    EXPECT_LE(claim.a, claim.b);
    EXPECT_TRUE(evidenced.contains(claim.address))
        << claim.address.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(1, 7, 42, 1234));

}  // namespace
}  // namespace mapit::core
