#include "core/explain.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mapit::core {
namespace {

using testutil::MiniWorld;

TEST(Explain, InferredInterfaceTrail) {
  MiniWorld world({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}},
                  {
                      "0|9.9.9.9|1.0.0.10 2.0.0.2",
                      "1|9.9.9.9|1.0.0.10 2.0.0.6",
                  });
  const Result result = world.run();
  const std::string text = explain(result, world.graph(), world.ip2as(),
                                   testutil::addr("1.0.0.10"));
  EXPECT_NE(text.find("interface 1.0.0.10"), std::string::npos);
  EXPECT_NE(text.find("origin AS100"), std::string::npos);
  EXPECT_NE(text.find("other side 1.0.0.9"), std::string::npos);
  EXPECT_NE(text.find("2.0.0.2_b"), std::string::npos);
  EXPECT_NE(text.find("AS200 <-> AS100 (direct)"), std::string::npos);
  EXPECT_NE(text.find("2/2 neighbours agree"), std::string::npos);
  // The backward half has no neighbours at all.
  EXPECT_NE(text.find("fewer than two neighbour addresses"),
            std::string::npos);
}

TEST(Explain, ShowsRefinedMappings) {
  // The multipass example: after refinement, 1.0.0.10_f maps to AS200 and
  // the trail for its successor must say so.
  MiniWorld world(
      {{"1.0.0.0/16", 100},
       {"2.0.0.0/16", 200},
       {"3.0.0.0/16", 300},
       {"5.0.0.0/16", 500}},
      {
          "0|9.9.9.9|1.0.0.10 2.0.0.2",
          "1|9.9.9.9|1.0.0.10 2.0.0.6",
          "2|9.9.9.9|1.0.0.10 3.0.0.1 3.0.0.50",
          "3|9.9.9.9|2.0.0.14 3.0.0.1 3.0.0.60",
          "4|9.9.9.9|5.0.0.1 3.0.0.1 3.0.0.70",
      });
  const Result result = world.run();
  const std::string text = explain(result, world.graph(), world.ip2as(),
                                   testutil::addr("3.0.0.1"));
  // 1.0.0.10_f appears in N_B with both its origin and refined mapping.
  EXPECT_NE(text.find("1.0.0.10_f  origin AS100, refined to AS200"),
            std::string::npos);
  EXPECT_NE(text.find("AS200 <-> AS300 (direct)"), std::string::npos);
}

TEST(Explain, UnknownAddress) {
  MiniWorld world({{"1.0.0.0/16", 100}},
                  {"0|9.9.9.9|1.0.0.1 1.0.0.2"});
  const Result result = world.run();
  const std::string text = explain(result, world.graph(), world.ip2as(),
                                   testutil::addr("99.99.99.99"));
  EXPECT_NE(text.find("never seen adjacent"), std::string::npos);
}

TEST(Explain, UnannouncedOrigin) {
  MiniWorld world({{"2.0.0.0/16", 200}},
                  {
                      "0|9.9.9.9|66.0.0.10 2.0.0.2",
                      "1|9.9.9.9|66.0.0.10 2.0.0.6",
                  });
  const Result result = world.run();
  const std::string text = explain(result, world.graph(), world.ip2as(),
                                   testutil::addr("66.0.0.10"));
  EXPECT_NE(text.find("origin unannounced"), std::string::npos);
}

}  // namespace
}  // namespace mapit::core
