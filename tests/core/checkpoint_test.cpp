// Checkpoint file format and run-identity checks: field-exact round-trips,
// the every-bit-flip and every-truncation rejection matrices over a whole
// checkpoint file, config-hash sensitivity (output-affecting options only),
// and the FNV-1a input fingerprinting used to pin a checkpoint to its
// corpus/RIB/datasets.
#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/engine.h"
#include "net/error.h"

namespace mapit::core {
namespace {

namespace fs = std::filesystem;

Checkpoint sample_checkpoint() {
  Checkpoint ckpt;
  ckpt.meta.config_hash = 0x1111111111111111ull;
  ckpt.meta.corpus_fingerprint = 0x2222222222222222ull;
  ckpt.meta.rib_fingerprint = 0x3333333333333333ull;
  ckpt.meta.datasets_fingerprint = 0x4444444444444444ull;
  ckpt.boundary = RunBoundary::kAfterAddStep;
  ckpt.iterations_done = 7;
  // Embedded NUL and high bytes: the state blob is binary, not text.
  ckpt.engine_state = std::string("state\0with\xff\x01binary", 18);
  return ckpt;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mapit_checkpoint_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    path_ = checkpoint_path(dir_.string());
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string file_bytes() const {
    std::ifstream in(path_, std::ios::binary);
    EXPECT_TRUE(in.good());
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  void overwrite_file(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(CheckpointTest, RoundTripPreservesEveryField) {
  const Checkpoint original = sample_checkpoint();
  write_checkpoint(path_, original);
  const Checkpoint restored = read_checkpoint(path_);
  EXPECT_EQ(restored.meta, original.meta);
  EXPECT_EQ(restored.boundary, original.boundary);
  EXPECT_EQ(restored.iterations_done, original.iterations_done);
  EXPECT_EQ(restored.engine_state, original.engine_state);
}

TEST_F(CheckpointTest, RewriteAtomicallyReplacesThePreviousCheckpoint) {
  write_checkpoint(path_, sample_checkpoint());
  Checkpoint second = sample_checkpoint();
  second.boundary = RunBoundary::kAfterIteration;
  second.iterations_done = 12;
  second.engine_state += "-more-state";
  write_checkpoint(path_, second);
  const Checkpoint restored = read_checkpoint(path_);
  EXPECT_EQ(restored.iterations_done, 12);
  EXPECT_EQ(restored.engine_state, second.engine_state);
  // The atomic rewrite leaves no temp files behind.
  EXPECT_EQ(std::distance(fs::directory_iterator(dir_),
                          fs::directory_iterator{}),
            1);
}

TEST_F(CheckpointTest, CheckpointPathIsTheCanonicalFileInTheDirectory) {
  EXPECT_EQ(checkpoint_path("/some/dir"), "/some/dir/engine.ckpt");
}

TEST_F(CheckpointTest, MissingFileIsRejected) {
  EXPECT_THROW((void)read_checkpoint(path_), CheckpointError);
}

TEST_F(CheckpointTest, EmptyStateBlobRoundTrips) {
  Checkpoint ckpt = sample_checkpoint();
  ckpt.engine_state.clear();
  write_checkpoint(path_, ckpt);
  EXPECT_EQ(read_checkpoint(path_).engine_state, "");
}

// The headline corruption guarantee: flipping ANY single bit anywhere in
// the file — header fields, reserved bytes, CRC itself, payload — must be
// rejected loudly, never resumed from.
TEST_F(CheckpointTest, EveryBitFlipIsRejected) {
  write_checkpoint(path_, sample_checkpoint());
  const std::string good = file_bytes();
  ASSERT_GE(good.size(), 32u);
  for (std::size_t i = 0; i < good.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[i] = static_cast<char>(static_cast<unsigned char>(bad[i]) ^
                                 (1u << bit));
      overwrite_file(bad);
      EXPECT_THROW((void)read_checkpoint(path_), CheckpointError)
          << "flip accepted at byte " << i << " bit " << bit;
    }
  }
}

// And every truncation, down to the empty file.
TEST_F(CheckpointTest, EveryTruncationIsRejected) {
  write_checkpoint(path_, sample_checkpoint());
  const std::string good = file_bytes();
  for (std::size_t len = 0; len < good.size(); ++len) {
    overwrite_file(good.substr(0, len));
    EXPECT_THROW((void)read_checkpoint(path_), CheckpointError)
        << "truncation to " << len << " bytes accepted";
  }
}

TEST_F(CheckpointTest, TrailingGarbageIsRejected) {
  write_checkpoint(path_, sample_checkpoint());
  overwrite_file(file_bytes() + 'x');
  EXPECT_THROW((void)read_checkpoint(path_), CheckpointError);
}

TEST_F(CheckpointTest, ForeignVersionIsRejected) {
  write_checkpoint(path_, sample_checkpoint());
  std::string bad = file_bytes();
  // Version field lives at offset 12 (after magic + endianness marker).
  const std::uint32_t foreign = kCheckpointVersion + 1;
  bad.replace(12, 4, reinterpret_cast<const char*>(&foreign), 4);
  overwrite_file(bad);
  EXPECT_THROW((void)read_checkpoint(path_), CheckpointError);
}

TEST_F(CheckpointTest, ConfigHashCoversEveryOutputAffectingOption) {
  const Options base;
  const std::uint64_t reference = config_hash(base);
  EXPECT_EQ(config_hash(base), reference) << "hash must be deterministic";

  Options changed = base;
  changed.f = 0.75;
  EXPECT_NE(config_hash(changed), reference);
  changed = base;
  changed.remove_rule = RemoveRule::kAddRule;
  EXPECT_NE(config_hash(changed), reference);
  changed = base;
  changed.max_iterations = base.max_iterations + 1;
  EXPECT_NE(config_hash(changed), reference);

  const auto toggles = {
      &Options::sibling_grouping, &Options::update_other_sides,
      &Options::ixp_aware,        &Options::resolve_duals,
      &Options::resolve_inverses, &Options::stub_heuristic,
  };
  for (bool Options::*toggle : toggles) {
    changed = base;
    changed.*toggle = !(base.*toggle);
    EXPECT_NE(config_hash(changed), reference);
  }
}

TEST_F(CheckpointTest, ConfigHashIgnoresOutputInvariantKnobs) {
  // threads, capture_snapshots, and incremental_recount are proven
  // output-invariant (engine equivalence tests), so a resume may change
  // them freely — the hash must not see them.
  const Options base;
  const std::uint64_t reference = config_hash(base);
  Options changed = base;
  changed.threads = 8;
  EXPECT_EQ(config_hash(changed), reference);
  changed = base;
  changed.capture_snapshots = true;
  EXPECT_EQ(config_hash(changed), reference);
  changed = base;
  changed.incremental_recount = false;
  EXPECT_EQ(config_hash(changed), reference);
}

TEST_F(CheckpointTest, FingerprintChainsLikeConcatenation) {
  const std::uint64_t whole = fingerprint_bytes(kFingerprintSeed, "abcdef");
  const std::uint64_t chained = fingerprint_bytes(
      fingerprint_bytes(kFingerprintSeed, "abc"), "def");
  EXPECT_EQ(chained, whole);
  EXPECT_NE(fingerprint_bytes(kFingerprintSeed, "abcdef"),
            fingerprint_bytes(kFingerprintSeed, "abcdeg"));
  EXPECT_NE(fingerprint_bytes(kFingerprintSeed, "ab"),
            fingerprint_bytes(kFingerprintSeed, "ba"));
}

TEST_F(CheckpointTest, FingerprintFileMatchesInMemoryDigest) {
  const std::string content("trace\0bytes\xff", 12);
  const std::string file = (dir_ / "input.bin").string();
  {
    std::ofstream out(file, std::ios::binary);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  }
  EXPECT_EQ(fingerprint_file(file),
            fingerprint_bytes(kFingerprintSeed, content));
  // Chaining a second file is the multi-dataset digest the CLI builds.
  EXPECT_EQ(fingerprint_file(file, fingerprint_file(file)),
            fingerprint_bytes(fingerprint_bytes(kFingerprintSeed, content),
                              content));
}

TEST_F(CheckpointTest, MissingInputFileIsALoadErrorNotACheckpointError) {
  const std::string missing = (dir_ / "no_such_file").string();
  try {
    (void)fingerprint_file(missing);
    FAIL() << "fingerprinting a missing file must throw";
  } catch (const CheckpointError&) {
    FAIL() << "a missing input is a load failure (exit 3), not a "
              "checkpoint mismatch (exit 4)";
  } catch (const Error&) {
    // Expected: plain mapit::Error.
  }
}

TEST_F(CheckpointTest, VerifyMetaAcceptsAnExactMatch) {
  const CheckpointMeta meta = sample_checkpoint().meta;
  EXPECT_NO_THROW(verify_checkpoint_meta(meta, meta));
}

TEST_F(CheckpointTest, VerifyMetaNamesTheMismatchedField) {
  const CheckpointMeta expected = sample_checkpoint().meta;
  struct Case {
    std::uint64_t CheckpointMeta::*field;
    const char* names;
  };
  const Case cases[] = {
      {&CheckpointMeta::config_hash, "config hash"},
      {&CheckpointMeta::corpus_fingerprint, "trace corpus"},
      {&CheckpointMeta::rib_fingerprint, "RIB"},
      {&CheckpointMeta::datasets_fingerprint, "AS datasets"},
  };
  for (const Case& c : cases) {
    CheckpointMeta recorded = expected;
    recorded.*(c.field) ^= 1;
    try {
      verify_checkpoint_meta(expected, recorded);
      FAIL() << "mismatch on " << c.names << " accepted";
    } catch (const CheckpointError& error) {
      EXPECT_NE(std::string(error.what()).find(c.names), std::string::npos)
          << "message should name \"" << c.names << "\": " << error.what();
    }
  }
}

}  // namespace
}  // namespace mapit::core
