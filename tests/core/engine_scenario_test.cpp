// Scenario tests reconstructing the paper's worked examples (Figs 2-5 and
// the §4.4.1 multipass narrative) on hand-built mini-worlds.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "test_util.h"

namespace mapit::core {
namespace {

using graph::Direction;
using testutil::MiniWorld;
using testutil::find_inference;

// ---------------------------------------------------------------------------
// §3.1 / Fig 2: a forward neighbour set dominated by another AS pins the
// interface to a router in that AS and names the inter-AS link.
// ---------------------------------------------------------------------------
TEST(EngineScenario, ForwardDirectInference) {
  // 1.0.0.10 is announced by AS100 but sits on an AS200 router (the
  // 109.105.98.10 situation): its successors are AS200-internal addresses.
  MiniWorld world(
      {{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}},
      {
          "0|9.9.9.9|1.0.0.10 2.0.0.2",
          "1|9.9.9.9|1.0.0.10 2.0.0.6",
      });
  const Result result = world.run();
  const Inference* inference =
      find_inference(result, "1.0.0.10", Direction::kForward);
  ASSERT_NE(inference, nullptr);
  EXPECT_EQ(inference->router_as, 200u);  // resides on an AS200 router
  EXPECT_EQ(inference->other_as, 100u);   // link connects AS200 <-> AS100
  EXPECT_EQ(inference->kind, InferenceKind::kDirect);
  EXPECT_FALSE(inference->uncertain);
}

TEST(EngineScenario, BackwardDirectInference) {
  // The mirrored case: predecessors of 3.0.0.1 are AS200-internal, so
  // 3.0.0.1 heads the AS200->AS300 link on an AS300 router.
  MiniWorld world(
      {{"2.0.0.0/16", 200}, {"3.0.0.0/16", 300}},
      {
          "0|9.9.9.9|2.0.0.2 3.0.0.1",
          "1|9.9.9.9|2.0.0.6 3.0.0.1",
      });
  const Result result = world.run();
  const Inference* inference =
      find_inference(result, "3.0.0.1", Direction::kBackward);
  ASSERT_NE(inference, nullptr);
  EXPECT_EQ(inference->router_as, 200u);
  EXPECT_EQ(inference->other_as, 300u);
}

// ---------------------------------------------------------------------------
// §4.4.1's multipass narrative: no inference is possible for 199.109.5.1_b
// on the first pass; the IP2AS update from 109.105.98.10_f's inference
// tips the count on the second pass.
// ---------------------------------------------------------------------------
TEST(EngineScenario, SecondPassInferenceAfterIp2AsUpdate) {
  // Cast: AS100 ~ NORDUnet (owns 1.0.0.10's space), AS200 ~ Internet2,
  // AS300 ~ NYSERNet (owns 3.0.0.1), AS500 ~ an unrelated network.
  MiniWorld world(
      {{"1.0.0.0/16", 100},
       {"2.0.0.0/16", 200},
       {"3.0.0.0/16", 300},
       {"5.0.0.0/16", 500}},
      {
          // Establish 1.0.0.10's forward inference (router in AS200).
          "0|9.9.9.9|1.0.0.10 2.0.0.2",
          "1|9.9.9.9|1.0.0.10 2.0.0.6",
          // 3.0.0.1's N_B = {1.0.0.10, 2.0.0.14, 5.0.0.1}: initially one
          // vote each for AS100/AS200/AS500 -> no strict majority.
          "2|9.9.9.9|1.0.0.10 3.0.0.1 3.0.0.50",
          "3|9.9.9.9|2.0.0.14 3.0.0.1 3.0.0.60",
          "4|9.9.9.9|5.0.0.1 3.0.0.1 3.0.0.70",
      });
  core::Options options;
  options.f = 0.5;
  const Result result = world.run(options);

  // After 1.0.0.10_f maps to AS200, N_B(3.0.0.1) counts AS200 twice.
  const Inference* inference =
      find_inference(result, "3.0.0.1", Direction::kBackward);
  ASSERT_NE(inference, nullptr);
  EXPECT_EQ(inference->router_as, 200u);
  EXPECT_EQ(inference->other_as, 300u);
  EXPECT_GE(result.stats.add_passes, 2);
}

TEST(EngineScenario, NoSecondPassInferenceWithoutTheUpdate) {
  // Control: disable other-side/mapping refinement by replacing 1.0.0.10's
  // helper traces; N_B(3.0.0.1) stays 1-1-1 and no inference appears.
  MiniWorld world(
      {{"1.0.0.0/16", 100},
       {"2.0.0.0/16", 200},
       {"3.0.0.0/16", 300},
       {"5.0.0.0/16", 500}},
      {
          "2|9.9.9.9|1.0.0.10 3.0.0.1 3.0.0.50",
          "3|9.9.9.9|2.0.0.14 3.0.0.1 3.0.0.60",
          "4|9.9.9.9|5.0.0.1 3.0.0.1 3.0.0.70",
      });
  const Result result = world.run();
  EXPECT_EQ(find_inference(result, "3.0.0.1", Direction::kBackward), nullptr);
}

// ---------------------------------------------------------------------------
// §4.4.3 / Fig 4: a third-party address draws inferences in both directions
// naming different ASes; the forward inference wins.
// ---------------------------------------------------------------------------
TEST(EngineScenario, DualInferenceKeepsForwardDropsBackward) {
  // 6.0.0.1 (AS600 ~ Level3's 212.113.9.210) appears after AS800 hops
  // (TeliaSonera) and before AS700 hops (Think Systems).
  MiniWorld world(
      {{"6.0.0.0/16", 600}, {"7.0.0.0/16", 700}, {"8.0.0.0/16", 800}},
      {
          "0|9.9.9.9|8.0.0.1 6.0.0.1 7.0.0.1",
          "1|9.9.9.9|8.0.0.5 6.0.0.1 7.0.0.5",
      });
  const Result result = world.run();
  const Inference* forward =
      find_inference(result, "6.0.0.1", Direction::kForward);
  ASSERT_NE(forward, nullptr);
  EXPECT_EQ(forward->router_as, 700u);
  EXPECT_EQ(forward->other_as, 600u);
  EXPECT_EQ(find_inference(result, "6.0.0.1", Direction::kBackward), nullptr);
  EXPECT_GE(result.stats.duals_resolved, 1u);
}

TEST(EngineScenario, DualInferenceSameAsKeepsBoth) {
  // When both directions name the same AS (load balancing / outgoing
  // interfaces), both inferences stay (§4.4.3).
  MiniWorld world(
      {{"6.0.0.0/16", 600}, {"7.0.0.0/16", 700}},
      {
          "0|9.9.9.9|7.0.0.1 6.0.0.1 7.0.0.9",
          "1|9.9.9.9|7.0.0.5 6.0.0.1 7.0.0.13",
      });
  const Result result = world.run();
  EXPECT_NE(find_inference(result, "6.0.0.1", Direction::kForward), nullptr);
  EXPECT_NE(find_inference(result, "6.0.0.1", Direction::kBackward), nullptr);
  EXPECT_EQ(result.stats.duals_resolved, 0u);
}

// ---------------------------------------------------------------------------
// §4.4.4 / Fig 5: inverse inferences. The campus border ingress (numbered
// from the provider) is the real boundary; the campus-internal interface
// with a provider-dominated N_B is the mistaken mirror inference.
// ---------------------------------------------------------------------------
TEST(EngineScenario, InverseInferenceKeepsForwardDropsBackward) {
  // AS900 ~ Internet2 (9/16), AS1100 ~ U. Montana (11.0/16).
  // 9.0.50.1 and 9.0.50.5 are ingresses of the campus border router
  // (provider-numbered links); 11.0.0.1 / 11.0.0.2 are campus-internal.
  MiniWorld world(
      {{"9.0.0.0/16", 900}, {"11.0.0.0/16", 1100}},
      {
          "0|9.9.9.9|9.0.0.10 9.0.50.1 11.0.0.1 11.0.0.9",
          "1|9.9.9.9|9.0.0.14 9.0.50.5 11.0.0.1 11.0.0.9",
          "2|9.9.9.9|9.0.0.10 9.0.50.1 11.0.0.2 11.0.0.9",
          "3|9.9.9.9|9.0.0.14 9.0.50.5 11.0.0.2 11.0.0.9",
      });
  const Result result = world.run();

  // Correct: the provider-numbered border ingresses are inferred forward.
  const Inference* fwd1 =
      find_inference(result, "9.0.50.1", Direction::kForward);
  ASSERT_NE(fwd1, nullptr);
  EXPECT_EQ(fwd1->router_as, 1100u);
  EXPECT_EQ(fwd1->other_as, 900u);
  EXPECT_NE(find_inference(result, "9.0.50.5", Direction::kForward), nullptr);

  // Mistaken mirror inferences on campus-internal interfaces are gone.
  EXPECT_EQ(find_inference(result, "11.0.0.1", Direction::kBackward), nullptr);
  EXPECT_EQ(find_inference(result, "11.0.0.2", Direction::kBackward), nullptr);
  EXPECT_GE(result.stats.inverses_resolved, 1u);
}

TEST(EngineScenario, UnresolvableInversePairBecomesUncertain) {
  // Same as above, but the other side of the mistaken backward IH also
  // carries a direct inference: neither IH is topologically nearer, so
  // MAP-IT emits both as uncertain (§4.4.4).
  //
  // 11.0.0.1's other side is 11.0.0.2 (no /30 witness -> /30 pairing);
  // giving 11.0.0.2_f an AS900-dominated N_F creates the stalemate.
  MiniWorld world(
      {{"9.0.0.0/16", 900}, {"11.0.0.0/16", 1100}},
      {
          "0|9.9.9.9|9.0.0.10 9.0.50.1 11.0.0.1 11.0.0.9",
          "1|9.9.9.9|9.0.0.14 9.0.50.5 11.0.0.1 11.0.0.9",
          // A third AS900 predecessor keeps 11.0.0.1_b supported through
          // the remove step even after 9.0.50.1_f is remapped.
          "2|9.9.9.9|9.0.70.1 11.0.0.1 11.0.0.9",
          // Extra forward neighbours so 9.0.50.1_f keeps its inference
          // (11.0.0.5/11.0.0.7 sit in a different /30, so they are not /31
          // witnesses for 11.0.0.1 and the other-side relation stays
          // 11.0.0.1 <-> 11.0.0.2).
          "3|9.9.9.9|9.0.0.10 9.0.50.1 11.0.0.5 11.0.0.9",
          "4|9.9.9.9|9.0.0.10 9.0.50.1 11.0.0.7 11.0.0.9",
          // 11.0.0.2's forward neighbours are AS900 addresses.
          "5|9.9.9.9|11.0.0.50 11.0.0.2 9.0.60.1",
          "6|9.9.9.9|11.0.0.54 11.0.0.2 9.0.60.5",
      });
  const Result result = world.run();
  EXPECT_GE(result.stats.uncertain_pairs, 1u);
  ASSERT_FALSE(result.uncertain.empty());
  // Both members of the inverse pair are excluded from confident output
  // and present on the uncertain list.
  bool found_backward = false;
  for (const Inference& inference : result.uncertain) {
    if (inference.half.address == testutil::addr("11.0.0.1") &&
        inference.half.direction == Direction::kBackward) {
      found_backward = true;
    }
  }
  EXPECT_TRUE(found_backward);
  EXPECT_EQ(find_inference(result, "11.0.0.1", Direction::kBackward), nullptr);
}

// ---------------------------------------------------------------------------
// §4.4.2: the other side of a direct inference receives an indirect
// inference naming the same link.
// ---------------------------------------------------------------------------
TEST(EngineScenario, IndirectInferenceOnOtherSide) {
  MiniWorld world(
      {{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}},
      {
          "0|9.9.9.9|1.0.0.10 2.0.0.2",
          "1|9.9.9.9|1.0.0.10 2.0.0.6",
      });
  const Result result = world.run();
  // 1.0.0.10 is a /30 host without witness: other side is 1.0.0.9, whose
  // backward half mirrors the link {AS200, AS100}.
  const Inference* indirect =
      find_inference(result, "1.0.0.9", Direction::kBackward);
  ASSERT_NE(indirect, nullptr);
  EXPECT_EQ(indirect->kind, InferenceKind::kIndirect);
  EXPECT_EQ(indirect->as_pair(), (std::pair<asdata::Asn, asdata::Asn>{100, 200}));
}

// ---------------------------------------------------------------------------
// §4.5: an inference invalidated by later mapping updates is demoted and
// discarded; the engine re-derives the corrected link.
// ---------------------------------------------------------------------------
TEST(EngineScenario, RemoveStepRevisesInvalidatedInference) {
  // Z = 20.0.0.1 (AS20). Its N_F = {21.0.0.1, 21.0.0.2} (AS21) initially
  // supports {21, 20}. But both members' backward halves are dominated by
  // AS22, remapping them; Z's support for AS21 collapses, the remove step
  // demotes and discards the inference, and the next add step settles on
  // {22, 20}. (The AS23 padding keeps 22.0.0.x's forward halves tied so
  // the inverse-inference machinery stays out of the picture.)
  MiniWorld world(
      {{"20.0.0.0/16", 20},
       {"21.0.0.0/16", 21},
       {"22.0.0.0/16", 22},
       {"23.0.0.0/16", 23}},
      {
          "0|9.9.9.9|20.0.0.1 21.0.0.1",
          "1|9.9.9.9|20.0.0.1 21.0.0.2",
          "2|9.9.9.9|22.0.0.1 21.0.0.1 21.0.0.99",
          "3|9.9.9.9|22.0.0.5 21.0.0.1 21.0.0.99",
          "4|9.9.9.9|22.0.0.1 21.0.0.2 21.0.0.99",
          "5|9.9.9.9|22.0.0.5 21.0.0.2 21.0.0.99",
          "6|9.9.9.9|22.0.0.1 23.0.0.9",
          "7|9.9.9.9|22.0.0.1 23.0.0.13",
          "8|9.9.9.9|22.0.0.5 23.0.0.9",
          "9|9.9.9.9|22.0.0.5 23.0.0.13",
      });
  const Result result = world.run();
  const Inference* inference =
      find_inference(result, "20.0.0.1", Direction::kForward);
  ASSERT_NE(inference, nullptr);
  EXPECT_EQ(inference->router_as, 22u);
  EXPECT_EQ(inference->other_as, 20u);
  EXPECT_GE(result.stats.removed_in_remove_step, 1u);
  EXPECT_TRUE(result.stats.converged);
}

}  // namespace
}  // namespace mapit::core
