// AS-level path annotation tests: the Fig 1 correction, attribution rules
// per inference kind/direction, and a corpus-level accuracy comparison
// against true router paths.
#include "core/as_path.h"

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "route/as_routing.h"
#include "route/forwarder.h"
#include "test_util.h"
#include "trace/trace_io.h"
#include "tracesim/simulator.h"

namespace mapit::core {
namespace {

using graph::Direction;
using testutil::MiniWorld;

TEST(RouterAttribution, PerKindAndDirection) {
  const net::Ipv4Address a = testutil::addr("1.2.3.4");
  // Forward direct: router in the dominating AS.
  EXPECT_EQ(router_attribution(
                {graph::forward_half(a), 200, 100, InferenceKind::kDirect,
                 false, 2, 2}),
            200u);
  // Backward direct: router stays in the address-owning AS.
  EXPECT_EQ(router_attribution(
                {graph::backward_half(a), 200, 100, InferenceKind::kDirect,
                 false, 2, 2}),
            100u);
  // Indirect mirrors invert their source.
  EXPECT_EQ(router_attribution(
                {graph::forward_half(a), 200, 100, InferenceKind::kIndirect,
                 false, 2, 2}),
            100u);
  EXPECT_EQ(router_attribution(
                {graph::backward_half(a), 200, 100, InferenceKind::kIndirect,
                 false, 2, 2}),
            200u);
  // Stub inferences behave like direct ones.
  EXPECT_EQ(router_attribution(
                {graph::forward_half(a), 1300, 1200, InferenceKind::kStub,
                 false, 1, 1}),
            1300u);
}

TEST(PathAnnotator, CorrectsTheFig1Mistake) {
  // 1.0.0.10 is announced by AS100 but sits on an AS200 router; the naive
  // AS path through it claims a false AS100 presence.
  MiniWorld world({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}},
                  {
                      "0|2.0.0.99|1.0.0.10 2.0.0.2",
                      "1|2.0.0.99|1.0.0.10 2.0.0.6",
                  });
  const Result result = world.run();
  const PathAnnotator annotator(result, world.ip2as());
  const trace::Trace probe =
      trace::parse_trace("0|2.0.0.99|1.0.0.10 2.0.0.2");
  const AnnotatedPath annotated = annotator.annotate(probe);

  EXPECT_EQ(annotated.naive_as_path, (std::vector<asdata::Asn>{100, 200}));
  EXPECT_EQ(annotated.as_path, (std::vector<asdata::Asn>{200}));
  ASSERT_EQ(annotated.hops.size(), 2u);
  EXPECT_EQ(annotated.hops[0].origin, 100u);
  EXPECT_EQ(annotated.hops[0].inferred, 200u);
  EXPECT_TRUE(annotated.hops[0].border);
  EXPECT_FALSE(annotated.hops[1].border);
}

TEST(PathAnnotator, SilentAndUnknownHops) {
  MiniWorld world({{"1.0.0.0/16", 100}},
                  {"0|9.9.9.9|1.0.0.1 1.0.0.2"});
  const Result result = world.run();
  const PathAnnotator annotator(result, world.ip2as());
  const trace::Trace probe =
      trace::parse_trace("0|9.9.9.9|1.0.0.1 * 66.0.0.1 1.0.0.2");
  const AnnotatedPath annotated = annotator.annotate(probe);
  ASSERT_EQ(annotated.hops.size(), 4u);
  EXPECT_FALSE(annotated.hops[1].address.has_value());
  EXPECT_EQ(annotated.hops[2].inferred, asdata::kUnknownAsn);
  // Unknown/silent hops are skipped, consecutive duplicates collapse.
  EXPECT_EQ(annotated.as_path, (std::vector<asdata::Asn>{100}));
}

TEST(PathAnnotator, BeatsNaiveMappingOnGeneratedCorpus) {
  // Corpus-level: compare both AS paths against the *true* router-path AS
  // sequence for a sample of clean traces. MAP-IT's annotation must make
  // strictly fewer mistakes than naive origin mapping.
  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::small());
  const Result result = experiment->run_mapit({});
  const PathAnnotator annotator(result, experiment->ip2as());

  route::AsRouting routing(experiment->internet().true_relationships());
  route::Forwarder forwarder(experiment->internet(), routing);
  tracesim::TracerouteSimulator simulator(experiment->internet(), forwarder,
                                          experiment->config().simulation);

  std::size_t naive_correct = 0, inferred_correct = 0, compared = 0;
  for (std::size_t i = 0; i < experiment->corpus().size(); i += 37) {
    const trace::Trace& t = experiment->corpus().traces()[i];
    // True AS sequence from the forwarding plane (skip artifact traces
    // where hops do not map to routers).
    const auto path =
        forwarder.path(simulator.monitors()[t.monitor].source_router,
                       t.destination, 0);
    if (path.empty()) continue;
    std::vector<asdata::Asn> truth;
    for (const route::RouterHop& hop : path) {
      const asdata::Asn owner =
          experiment->internet().router(hop.router).owner;
      if (truth.empty() || truth.back() != owner) truth.push_back(owner);
    }
    const AnnotatedPath annotated = annotator.annotate(t);
    ++compared;
    if (annotated.naive_as_path == truth) ++naive_correct;
    if (annotated.as_path == truth) ++inferred_correct;
  }
  ASSERT_GT(compared, 50u);
  EXPECT_GT(inferred_correct, naive_correct);
  // The corrected paths should match truth for a solid majority.
  EXPECT_GT(static_cast<double>(inferred_correct) /
                static_cast<double>(compared),
            0.6);
}

}  // namespace
}  // namespace mapit::core
