// Engine edge cases: degenerate inputs, iteration caps, divergent
// other-side accounting, final-mapping exposure.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "test_util.h"

namespace mapit::core {
namespace {

using graph::Direction;
using testutil::MiniWorld;
using testutil::find_inference;

TEST(EngineEdge, EmptyCorpus) {
  MiniWorld world({{"1.0.0.0/16", 100}}, {});
  const Result result = world.run();
  EXPECT_TRUE(result.inferences.empty());
  EXPECT_TRUE(result.uncertain.empty());
  EXPECT_TRUE(result.stats.converged);
  EXPECT_TRUE(result.final_mappings.empty());
}

TEST(EngineEdge, AllHopsUnresponsive) {
  MiniWorld world({{"1.0.0.0/16", 100}}, {"0|9.9.9.9|* * *"});
  const Result result = world.run();
  EXPECT_TRUE(result.inferences.empty());
}

TEST(EngineEdge, PrivateOnlyTraces) {
  // Special-purpose addresses never reach the graph, so nothing happens.
  MiniWorld world({{"1.0.0.0/16", 100}},
                  {"0|9.9.9.9|192.168.0.1 10.0.0.1 172.16.0.1"});
  const Result result = world.run();
  EXPECT_TRUE(result.inferences.empty());
}

TEST(EngineEdge, SingleIterationCapStillProducesOutput) {
  MiniWorld world({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}},
                  {
                      "0|9.9.9.9|1.0.0.10 2.0.0.2",
                      "1|9.9.9.9|1.0.0.10 2.0.0.6",
                  });
  Options options;
  options.max_iterations = 1;
  const Result result = world.run(options);
  EXPECT_EQ(result.stats.iterations, 1);
  EXPECT_FALSE(result.stats.converged);  // never saw a repeated state
  EXPECT_NE(find_inference(result, "1.0.0.10", Direction::kForward), nullptr);
}

TEST(EngineEdge, FinalMappingsRecordRefinements) {
  MiniWorld world({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}},
                  {
                      "0|9.9.9.9|1.0.0.10 2.0.0.2",
                      "1|9.9.9.9|1.0.0.10 2.0.0.6",
                  });
  const Result result = world.run();
  const graph::InterfaceHalf half =
      graph::forward_half(testutil::addr("1.0.0.10"));
  auto it = result.final_mappings.find(half);
  ASSERT_NE(it, result.final_mappings.end());
  EXPECT_EQ(it->second, 200u);
  // The other side's backward half carries the indirect update too.
  EXPECT_TRUE(result.final_mappings.contains(
      graph::backward_half(testutil::addr("1.0.0.9"))));
}

TEST(EngineEdge, DivergentOtherSidesAreCounted) {
  // 5.0.0.1 and 5.0.0.2 form a /30 pair; give each a direct inference
  // naming a different AS pair. 5.0.0.1_b sees AS200 twice; 5.0.0.2_f sees
  // AS300 twice. The engine keeps both but counts the divergence (§4.4.3).
  MiniWorld world(
      {{"5.0.0.0/16", 500},
       {"2.0.0.0/16", 200},
       {"3.0.0.0/16", 300}},
      {
          "0|9.9.9.9|2.0.0.2 5.0.0.1",
          "1|9.9.9.9|2.0.0.6 5.0.0.1",
          "2|9.9.9.9|5.0.0.2 3.0.0.2",
          "3|9.9.9.9|5.0.0.2 3.0.0.6",
      });
  const Result result = world.run();
  ASSERT_NE(find_inference(result, "5.0.0.1", Direction::kBackward), nullptr);
  ASSERT_NE(find_inference(result, "5.0.0.2", Direction::kForward), nullptr);
  EXPECT_EQ(result.stats.divergent_other_sides, 1u);
}

TEST(EngineEdge, MatchingOtherSidesAreNotDivergent) {
  // Same layout but both halves name the same AS pair: no divergence.
  MiniWorld world({{"5.0.0.0/16", 500}, {"2.0.0.0/16", 200}},
                  {
                      "0|9.9.9.9|2.0.0.2 5.0.0.1",
                      "1|9.9.9.9|2.0.0.6 5.0.0.1",
                      "2|9.9.9.9|5.0.0.2 2.0.0.3",
                      "3|9.9.9.9|5.0.0.2 2.0.0.7",
                  });
  const Result result = world.run();
  EXPECT_EQ(result.stats.divergent_other_sides, 0u);
}

TEST(EngineEdge, SiblingDualInferenceKeepsBoth) {
  // §4.4.3: dual inferences naming sibling ASes are retained on both
  // halves (the link identity is unaffected).
  MiniWorld world(
      {{"6.0.0.0/16", 600}, {"7.0.0.0/16", 701}, {"7.1.0.0/16", 702}},
      {
          "0|9.9.9.9|7.0.0.1 6.0.0.1 7.1.0.9",
          "1|9.9.9.9|7.0.0.5 6.0.0.1 7.1.0.13",
      });
  world.orgs().add_sibling_pair(701, 702);
  const Result result = world.run();
  EXPECT_NE(find_inference(result, "6.0.0.1", Direction::kForward), nullptr);
  EXPECT_NE(find_inference(result, "6.0.0.1", Direction::kBackward), nullptr);
  EXPECT_EQ(result.stats.duals_resolved, 0u);
}

TEST(EngineEdge, UnannouncedInterfaceDualIsNotFixed) {
  // §4.4.3: contradictions on unannounced interfaces are left alone
  // because their mapping updates can enable additional inferences.
  MiniWorld world({{"7.0.0.0/16", 700}, {"8.0.0.0/16", 800}},
                  {
                      "0|9.9.9.9|8.0.0.1 66.0.0.1 7.0.0.1",
                      "1|9.9.9.9|8.0.0.5 66.0.0.1 7.0.0.5",
                  });
  const Result result = world.run();
  EXPECT_NE(find_inference(result, "66.0.0.1", Direction::kForward), nullptr);
  EXPECT_NE(find_inference(result, "66.0.0.1", Direction::kBackward), nullptr);
  EXPECT_EQ(result.stats.duals_resolved, 0u);
}

TEST(EngineEdge, SupportRatiosExposed) {
  MiniWorld world(
      {{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}, {"3.0.0.0/16", 300}},
      {
          "0|9.9.9.9|1.0.0.10 2.0.0.2",
          "1|9.9.9.9|1.0.0.10 2.0.0.6",
          "2|9.9.9.9|1.0.0.10 3.0.0.2",
      });
  const Result result = world.run();
  const Inference* inference =
      find_inference(result, "1.0.0.10", Direction::kForward);
  ASSERT_NE(inference, nullptr);
  EXPECT_EQ(inference->votes, 2u);
  EXPECT_EQ(inference->neighbor_count, 3u);
  EXPECT_NEAR(inference->support(), 2.0 / 3.0, 1e-9);
}

TEST(EngineEdge, EngineStatsAreConsistent) {
  MiniWorld world({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}},
                  {
                      "0|9.9.9.9|1.0.0.10 2.0.0.2",
                      "1|9.9.9.9|1.0.0.10 2.0.0.6",
                  });
  const Result result = world.run();
  EXPECT_GE(result.stats.add_passes, result.stats.iterations);
  EXPECT_GE(result.stats.direct_made, 1u);
  EXPECT_TRUE(result.stats.converged);
}

}  // namespace
}  // namespace mapit::core
