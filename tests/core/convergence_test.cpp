// Regression tests for convergence detection (paper §4.6).
//
// The engine used to compare bare 64-bit state hashes built by XOR-combining
// per-entry hashes. XOR cancels paired equal entries, so two very different
// states could share a hash and fake convergence, truncating the run. The
// ConvergenceTracker must distinguish states that collide under any hash.
#include "core/convergence.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace mapit::core {
namespace {

// The old per-entry mixer and XOR combine, reproduced verbatim to build a
// genuine collision pair.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t xor_combine(const std::vector<std::uint64_t>& entries) {
  std::uint64_t hash = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t entry : entries) hash ^= mix(entry);
  return hash;
}

TEST(ConvergenceTracker, FirstStateIsNeverARepeat) {
  ConvergenceTracker tracker;
  EXPECT_FALSE(tracker.seen_before(42, "state-a"));
  EXPECT_EQ(tracker.size(), 1u);
}

TEST(ConvergenceTracker, RepeatedStateIsDetected) {
  ConvergenceTracker tracker;
  EXPECT_FALSE(tracker.seen_before(42, "state-a"));
  EXPECT_TRUE(tracker.seen_before(42, "state-a"));
  EXPECT_EQ(tracker.size(), 1u);
}

TEST(ConvergenceTracker, DistinctStatesWithSameHashAreNotARepeat) {
  // Two distinct engine states whose XOR-combined hashes are equal under
  // the old scheme: {a} versus {a, b, b} — the paired b entries cancel.
  const std::uint64_t a = 0x1111;
  const std::uint64_t b = 0x2222;
  const std::uint64_t collided = xor_combine({a});
  ASSERT_EQ(collided, xor_combine({a, b, b}))
      << "XOR-cancellation premise broken";

  // The tracker keys by that shared hash but must still tell the two
  // serialized states apart.
  ConvergenceTracker tracker;
  EXPECT_FALSE(tracker.seen_before(collided, "state:{a}"));
  EXPECT_FALSE(tracker.seen_before(collided, "state:{a,b,b}"));
  EXPECT_EQ(tracker.size(), 2u);

  // Genuine repeats of either colliding state are still found.
  EXPECT_TRUE(tracker.seen_before(collided, "state:{a}"));
  EXPECT_TRUE(tracker.seen_before(collided, "state:{a,b,b}"));
  EXPECT_EQ(tracker.size(), 2u);
}

TEST(ConvergenceTracker, EmbeddedNulBytesCompareCorrectly) {
  // Signatures are raw byte strings; equality must be length-aware.
  ConvergenceTracker tracker;
  const std::string with_nul("ab\0cd", 5);
  const std::string prefix("ab", 2);
  EXPECT_FALSE(tracker.seen_before(7, with_nul));
  EXPECT_FALSE(tracker.seen_before(7, prefix));
  EXPECT_TRUE(tracker.seen_before(7, with_nul));
}

}  // namespace
}  // namespace mapit::core
