// FaultPlan semantics: call counting, Nth-call targeting, errno injection,
// short-byte truncation, crash throws, and passthrough correctness — the
// harness every fault-matrix test builds on must itself be pinned.
#include "fault/plan.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <string>

#include "net/error.h"

namespace mapit::fault {
namespace {

class TempFile {
 public:
  TempFile() {
    char name[] = "/tmp/mapit_fault_io_XXXXXX";
    fd_ = ::mkstemp(name);
    EXPECT_GE(fd_, 0);
    path_ = name;
  }
  ~TempFile() {
    if (fd_ >= 0) ::close(fd_);
    ::unlink(path_.c_str());
  }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

TEST(FaultPlanTest, PassesThroughAndCounts) {
  TempFile file;
  FaultPlan plan;
  EXPECT_EQ(plan.calls(Op::kWrite), 0u);
  EXPECT_EQ(plan.write(file.fd(), "abc", 3), 3);
  EXPECT_EQ(plan.write(file.fd(), "de", 2), 2);
  EXPECT_EQ(plan.calls(Op::kWrite), 2u);
  EXPECT_EQ(plan.triggered(), 0u);
}

TEST(FaultPlanTest, InjectsErrnoAtNthCallOnly) {
  TempFile file;
  FaultPlan plan;
  plan.add(Fault{.op = Op::kWrite, .nth = 2, .inject_errno = ENOSPC});
  EXPECT_EQ(plan.write(file.fd(), "a", 1), 1);
  errno = 0;
  EXPECT_EQ(plan.write(file.fd(), "b", 1), -1);
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(plan.write(file.fd(), "c", 1), 1);
  EXPECT_EQ(plan.triggered(), 1u);
  // The failed call wrote nothing: the file holds exactly "ac".
  char buffer[8] = {};
  EXPECT_EQ(::pread(file.fd(), buffer, sizeof(buffer), 0), 2);
  EXPECT_STREQ(buffer, "ac");
}

TEST(FaultPlanTest, RepeatCoversConsecutiveCalls) {
  FaultPlan plan;
  plan.add(Fault{.op = Op::kAccept, .nth = 1, .repeat = 3,
                 .inject_errno = EMFILE});
  for (int i = 0; i < 3; ++i) {
    errno = 0;
    EXPECT_EQ(plan.accept4(-1, nullptr, nullptr, 0), -1);
    EXPECT_EQ(errno, EMFILE);
  }
  // Call 4 passes through to the real accept4 on fd -1: EBADF, not EMFILE.
  errno = 0;
  EXPECT_EQ(plan.accept4(-1, nullptr, nullptr, 0), -1);
  EXPECT_EQ(errno, EBADF);
  EXPECT_EQ(plan.calls(Op::kAccept), 4u);
  EXPECT_EQ(plan.triggered(), 1u);
}

TEST(FaultPlanTest, ShortWriteTruncates) {
  TempFile file;
  FaultPlan plan;
  plan.add(Fault{.op = Op::kWrite, .nth = 1, .short_bytes = 2});
  EXPECT_EQ(plan.write(file.fd(), "abcdef", 6), 2);
  EXPECT_EQ(plan.write(file.fd(), "cdef", 4), 4);
  char buffer[8] = {};
  EXPECT_EQ(::pread(file.fd(), buffer, sizeof(buffer), 0), 6);
  EXPECT_STREQ(buffer, "abcdef");
}

TEST(FaultPlanTest, ShortReadTruncates) {
  TempFile file;
  ASSERT_EQ(::write(file.fd(), "abcdef", 6), 6);
  ASSERT_EQ(::lseek(file.fd(), 0, SEEK_SET), 0);
  FaultPlan plan;
  plan.add(Fault{.op = Op::kRead, .nth = 1, .short_bytes = 3});
  char buffer[8] = {};
  EXPECT_EQ(plan.read(file.fd(), buffer, sizeof(buffer)), 3);
  EXPECT_EQ(std::string(buffer, 3), "abc");
}

TEST(FaultPlanTest, CrashThrowsBeforeTheCall) {
  TempFile file;
  FaultPlan plan;
  plan.add(Fault{.op = Op::kWrite, .nth = 2, .crash = true});
  EXPECT_EQ(plan.write(file.fd(), "a", 1), 1);
  EXPECT_THROW(plan.write(file.fd(), "b", 1), InjectedCrash);
  // The crashed call never reached the kernel.
  char buffer[4] = {};
  EXPECT_EQ(::pread(file.fd(), buffer, sizeof(buffer), 0), 1);
  EXPECT_STREQ(buffer, "a");
  try {
    plan.reset_counters();
    plan.write(file.fd(), "x", 1);  // call 1: passthrough again
    plan.write(file.fd(), "y", 1);
    FAIL() << "expected InjectedCrash";
  } catch (const InjectedCrash& crash) {
    EXPECT_EQ(crash.op(), Op::kWrite);
    EXPECT_EQ(crash.nth(), 2u);
  }
}

TEST(FaultPlanTest, RenameAndFsyncInjection) {
  TempFile file;
  FaultPlan plan;
  plan.add(Fault{.op = Op::kFsync, .nth = 1, .inject_errno = EIO});
  plan.add(Fault{.op = Op::kRename, .nth = 1, .inject_errno = EXDEV});
  errno = 0;
  EXPECT_EQ(plan.fsync(file.fd()), -1);
  EXPECT_EQ(errno, EIO);
  errno = 0;
  EXPECT_EQ(plan.rename("/nonexistent/a", "/nonexistent/b"), -1);
  EXPECT_EQ(errno, EXDEV);
  // Past the faults both pass through.
  EXPECT_EQ(plan.fsync(file.fd()), 0);
}

TEST(FaultPlanTest, OpenInjection) {
  FaultPlan plan;
  plan.add(Fault{.op = Op::kOpen, .nth = 1, .inject_errno = EMFILE});
  errno = 0;
  EXPECT_EQ(plan.open("/tmp", O_RDONLY, 0), -1);
  EXPECT_EQ(errno, EMFILE);
  const int fd = plan.open("/tmp", O_RDONLY, 0);
  EXPECT_GE(fd, 0);
  ::close(fd);
}

TEST(FaultPlanTest, RejectsOverlappingAndDegenerateFaults) {
  FaultPlan plan;
  plan.add(Fault{.op = Op::kWrite, .nth = 2, .repeat = 3});
  EXPECT_THROW(plan.add(Fault{.op = Op::kWrite, .nth = 4}), InvariantError);
  EXPECT_NO_THROW(plan.add(Fault{.op = Op::kWrite, .nth = 5}));
  EXPECT_THROW(plan.add(Fault{.op = Op::kRead, .nth = 0}), InvariantError);
  EXPECT_THROW(plan.add(Fault{.op = Op::kRead, .nth = 1, .repeat = 0}),
               InvariantError);
  EXPECT_THROW(
      plan.add(Fault{.op = Op::kRead, .nth = 1, .inject_errno = EIO,
                     .crash = true}),
      InvariantError);
}

}  // namespace
}  // namespace mapit::fault
