// Fault matrix for write_file_atomic: whatever fails — and wherever it
// fails — the destination path must hold either the complete old content
// or the complete new content. The matrix crashes at every syscall the
// writer issues and injects every representative errno, then reads back
// the destination.
#include "fault/atomic_file.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fault/plan.h"
#include "net/error.h"

namespace mapit::fault {
namespace {

namespace fs = std::filesystem;

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mapit_atomic_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    path_ = (dir_ / "artifact.txt").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string read_destination() const {
    std::ifstream in(path_, std::ios::binary);
    EXPECT_TRUE(in) << "destination vanished: " << path_;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(AtomicFileTest, WritesAndReplaces) {
  write_file_atomic(path_, "first");
  EXPECT_EQ(read_destination(), "first");
  write_file_atomic(path_, "second, longer than before");
  EXPECT_EQ(read_destination(), "second, longer than before");
  // No temp litter on the success path.
  EXPECT_EQ(std::distance(fs::directory_iterator(dir_),
                          fs::directory_iterator{}),
            1);
}

TEST_F(AtomicFileTest, RetriesEintrAndShortWrites) {
  FaultPlan plan;
  // EINTR then a 1-byte short write: the loop must absorb both.
  plan.add(Fault{.op = Op::kWrite, .nth = 1, .inject_errno = EINTR});
  plan.add(Fault{.op = Op::kWrite, .nth = 2, .short_bytes = 1});
  const std::string content = "retry-me: 0123456789";
  write_file_atomic(path_, content, plan);
  EXPECT_EQ(read_destination(), content);
  EXPECT_GE(plan.calls(Op::kWrite), 3u);
}

// Every syscall the writer issues, crashed at every call index: the
// destination must afterwards hold the complete old artifact or (for a
// crash after the rename) the complete new one — never anything else.
TEST_F(AtomicFileTest, CrashMatrixLeavesOldOrNewOnly) {
  const std::string old_content = "OLD artifact, complete";
  const std::string new_content =
      "NEW artifact, complete, deliberately longer than the old one";
  const Op kOps[] = {Op::kOpen, Op::kWrite, Op::kFsync, Op::kRename,
                     Op::kClose};

  // Counting pass: how many calls of each op does one clean write issue?
  write_file_atomic(path_, old_content);
  FaultPlan counter;
  write_file_atomic(path_, new_content, counter);
  ASSERT_EQ(read_destination(), new_content);

  int crash_points = 0;
  for (const Op op : kOps) {
    const std::uint64_t calls = counter.calls(op);
    ASSERT_GE(calls, 1u) << to_string(op);
    for (std::uint64_t nth = 1; nth <= calls; ++nth) {
      // Fresh start: destination holds the old artifact again.
      write_file_atomic(path_, old_content);
      FaultPlan plan;
      plan.add(Fault{.op = op, .nth = nth, .crash = true});
      bool crashed = false;
      try {
        write_file_atomic(path_, new_content, plan);
      } catch (const InjectedCrash&) {
        crashed = true;
      }
      ASSERT_TRUE(crashed) << to_string(op) << " call " << nth
                           << " was never reached";
      ++crash_points;
      const std::string survivor = read_destination();
      EXPECT_TRUE(survivor == old_content || survivor == new_content)
          << "torn artifact after crash at " << to_string(op) << " call "
          << nth << ": '" << survivor << "'";
      // Crashes strictly before the rename call leave the OLD bytes; only
      // the parent-directory stage (call 2 of open/fsync/close) runs after
      // rename. The crash at the rename call itself fires BEFORE the
      // rename happens, so it too must leave the old artifact.
      const bool before_rename = op == Op::kWrite || op == Op::kRename ||
                                 nth == 1;
      EXPECT_EQ(survivor, before_rename ? old_content : new_content)
          << "crash at " << to_string(op) << " call " << nth;
    }
  }
  // open(tmp) + N writes + fsync(file) + close(file) + rename +
  // open(dir) + fsync(dir) + close(dir) — at least 8 distinct points.
  EXPECT_GE(crash_points, 8);
}

// Errno matrix: representative failures at every stage surface as
// mapit::Error, leave the destination untouched (or complete-new after
// rename), and clean up the temp file.
TEST_F(AtomicFileTest, ErrnoMatrixThrowsAndNeverTears) {
  const std::string old_content = "OLD";
  const std::string new_content = "NEW NEW NEW";

  struct Case {
    Op op;
    std::uint64_t nth;
    int err;
    bool destination_must_be_old;
  };
  const Case cases[] = {
      {Op::kOpen, 1, EMFILE, true},    // creating the temp file
      {Op::kWrite, 1, ENOSPC, true},   // first payload write
      {Op::kFsync, 1, EIO, true},      // fsync of the temp file
      {Op::kClose, 1, EIO, true},      // close of the temp file
      {Op::kRename, 1, EXDEV, true},   // the rename itself
      {Op::kOpen, 2, EACCES, false},   // opening the parent directory
      {Op::kFsync, 2, EIO, false},     // fsync of the parent directory
      {Op::kClose, 2, EIO, false},     // close of the parent directory
  };
  for (const Case& c : cases) {
    write_file_atomic(path_, old_content);
    FaultPlan plan;
    plan.add(Fault{.op = c.op, .nth = c.nth, .inject_errno = c.err});
    EXPECT_THROW(write_file_atomic(path_, new_content, plan), Error)
        << to_string(c.op) << " call " << c.nth;
    const std::string survivor = read_destination();
    if (c.destination_must_be_old) {
      EXPECT_EQ(survivor, old_content)
          << to_string(c.op) << " call " << c.nth;
    } else {
      EXPECT_EQ(survivor, new_content)
          << to_string(c.op) << " call " << c.nth;
    }
    // Errno failures (unlike crashes) must not litter temp files.
    EXPECT_EQ(std::distance(fs::directory_iterator(dir_),
                            fs::directory_iterator{}),
              1)
        << "temp file left behind after " << to_string(c.op) << " failure";
  }
}

TEST_F(AtomicFileTest, CrashLeavesTempFileLikeAKillWould) {
  write_file_atomic(path_, "old");
  FaultPlan plan;
  plan.add(Fault{.op = Op::kFsync, .nth = 1, .crash = true});
  EXPECT_THROW(write_file_atomic(path_, "new", plan), InjectedCrash);
  EXPECT_EQ(read_destination(), "old");
  // The temp file survives, exactly as after a real kill; stale temps are
  // documented as harmless.
  int entries = 0;
  bool saw_tmp = false;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    ++entries;
    saw_tmp |= entry.path().string().find(".tmp.") != std::string::npos;
  }
  EXPECT_EQ(entries, 2);
  EXPECT_TRUE(saw_tmp);
}

TEST_F(AtomicFileTest, EmptyContentIsValid) {
  write_file_atomic(path_, "not empty");
  write_file_atomic(path_, "");
  EXPECT_EQ(read_destination(), "");
}

}  // namespace
}  // namespace mapit::fault
