#include "graph/interface_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"
#include "trace/sanitize.h"

namespace mapit::graph {
namespace {

using testutil::addr;
using testutil::corpus_from;

InterfaceGraph graph_of(std::initializer_list<std::string_view> lines) {
  // InterfaceGraph copies what it needs; the corpus can be a temporary.
  const trace::TraceCorpus corpus = corpus_from(lines);
  return InterfaceGraph(corpus, corpus.distinct_addresses());
}

TEST(InterfaceGraph, BuildsPaperFigure3NeighborSets) {
  // Fig 3's four path fragments around 198.71.46.180.
  const InterfaceGraph graph = graph_of({
      "0|9.9.9.9|109.105.98.10 198.71.46.180 205.233.255.36",
      "1|9.9.9.9|109.105.98.10 198.71.46.180 216.249.136.197",
      "2|9.9.9.9|198.71.45.236 198.71.46.180 *",
      "3|9.9.9.9|109.105.98.10 198.71.46.180 199.109.5.1",
  });
  const InterfaceRecord* record = graph.find(addr("198.71.46.180"));
  ASSERT_NE(record, nullptr);
  // N_F: three unique successors; N_B: two unique predecessors — exactly
  // the sets shown in the paper's Fig 3.
  ASSERT_EQ(record->forward.size(), 3u);
  EXPECT_EQ(record->forward[0], addr("199.109.5.1"));
  EXPECT_EQ(record->forward[1], addr("205.233.255.36"));
  EXPECT_EQ(record->forward[2], addr("216.249.136.197"));
  ASSERT_EQ(record->backward.size(), 2u);
  EXPECT_EQ(record->backward[0], addr("109.105.98.10"));
  EXPECT_EQ(record->backward[1], addr("198.71.45.236"));
}

TEST(InterfaceGraph, DuplicatesCollapseToUniqueNeighbors) {
  const InterfaceGraph graph = graph_of({
      "0|9.9.9.9|1.0.0.1 2.0.0.1",
      "1|9.9.9.9|1.0.0.1 2.0.0.1",
      "2|9.9.9.9|1.0.0.1 2.0.0.1",
  });
  const InterfaceRecord* record = graph.find(addr("2.0.0.1"));
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->backward.size(), 1u);
}

TEST(InterfaceGraph, NullHopsBreakAdjacency) {
  const InterfaceGraph graph = graph_of({
      "0|9.9.9.9|1.0.0.1 * 2.0.0.1",
  });
  EXPECT_EQ(graph.find(addr("1.0.0.1")), nullptr);
  EXPECT_EQ(graph.find(addr("2.0.0.1")), nullptr);
  EXPECT_EQ(graph.size(), 0u);
}

TEST(InterfaceGraph, TtlGapsBreakAdjacency) {
  // Sanitizer-stripped hops leave TTL gaps; the builder must honour them.
  trace::TraceCorpus corpus = corpus_from({
      "0|9.9.9.9|1.0.0.1 2.0.0.1@0 3.0.0.1",
  });
  const auto sanitized = trace::sanitize(corpus);
  const InterfaceGraph graph(sanitized.clean, corpus.distinct_addresses());
  EXPECT_EQ(graph.find(addr("1.0.0.1")), nullptr);
  EXPECT_EQ(graph.find(addr("3.0.0.1")), nullptr);
}

TEST(InterfaceGraph, SpecialAddressesExcluded) {
  const InterfaceGraph graph = graph_of({
      "0|9.9.9.9|1.0.0.1 192.168.0.1 2.0.0.1",
      "1|9.9.9.9|1.0.0.1 3.0.0.1",
  });
  // The private hop forms no pairs in either direction.
  EXPECT_EQ(graph.find(addr("192.168.0.1")), nullptr);
  const InterfaceRecord* record = graph.find(addr("1.0.0.1"));
  ASSERT_NE(record, nullptr);
  ASSERT_EQ(record->forward.size(), 1u);
  EXPECT_EQ(record->forward[0], addr("3.0.0.1"));
}

TEST(InterfaceGraph, SelfAdjacencyIgnored) {
  const InterfaceGraph graph = graph_of({
      "0|9.9.9.9|1.0.0.1 1.0.0.1 2.0.0.1",
  });
  const InterfaceRecord* record = graph.find(addr("1.0.0.1"));
  ASSERT_NE(record, nullptr);
  ASSERT_EQ(record->forward.size(), 1u);
  EXPECT_EQ(record->forward[0], addr("2.0.0.1"));
  EXPECT_TRUE(record->backward.empty());
}

TEST(InterfaceGraph, NeighborsByHalf) {
  const InterfaceGraph graph = graph_of({
      "0|9.9.9.9|1.0.0.1 2.0.0.1 3.0.0.1",
  });
  EXPECT_EQ(graph.neighbors(forward_half(addr("2.0.0.1"))).size(), 1u);
  EXPECT_EQ(graph.neighbors(backward_half(addr("2.0.0.1"))).size(), 1u);
  EXPECT_TRUE(graph.neighbors(backward_half(addr("1.0.0.1"))).empty());
  EXPECT_TRUE(graph.neighbors(forward_half(addr("99.0.0.1"))).empty());
}

TEST(InterfaceGraph, OtherSideHalfFlipsDirectionAndAddress) {
  const InterfaceGraph graph = graph_of({
      "0|9.9.9.9|1.0.0.1 2.0.0.1",
  });
  // 2.0.0.1 is a /30 host with no witness: other side 2.0.0.2.
  const InterfaceHalf other =
      graph.other_side_half(backward_half(addr("2.0.0.1")));
  EXPECT_EQ(other.address, addr("2.0.0.2"));
  EXPECT_EQ(other.direction, Direction::kForward);
}

TEST(InterfaceGraph, StatsCountMultiNeighborAndOverlap) {
  const InterfaceGraph graph = graph_of({
      "0|9.9.9.9|1.0.0.1 5.0.0.1 2.0.0.1",
      "1|9.9.9.9|1.0.0.2 5.0.0.1 2.0.0.2",
      "2|9.9.9.9|2.0.0.1 5.0.0.1",  // 2.0.0.1 both before and after 5.0.0.1
  });
  const GraphStats stats = graph.stats();
  const InterfaceRecord* record = graph.find(addr("5.0.0.1"));
  ASSERT_NE(record, nullptr);
  EXPECT_GT(record->forward.size(), 1u);
  EXPECT_GT(record->backward.size(), 1u);
  EXPECT_EQ(stats.both_directions_overlap, 2u);  // 5.0.0.1 and 2.0.0.1
  EXPECT_GE(stats.forward_multi, 1u);
  EXPECT_GE(stats.backward_multi, 1u);
}

TEST(InterfaceGraph, RecordsSortedByAddress) {
  const InterfaceGraph graph = graph_of({
      "0|9.9.9.9|9.0.0.1 1.0.0.1 5.0.0.1",
  });
  ASSERT_EQ(graph.size(), 3u);
  EXPECT_LT(graph.interfaces()[0].address, graph.interfaces()[1].address);
  EXPECT_LT(graph.interfaces()[1].address, graph.interfaces()[2].address);
}

// ---------------------------------------------------------------------------
// Dense half-ID layout (consumed by the engine's flat state slabs).
// ---------------------------------------------------------------------------

TEST(InterfaceGraphDense, HalfIdRoundTripsAndFollowsAddressOrder) {
  const InterfaceGraph graph = graph_of({
      "0|9.9.9.9|9.0.0.1 1.0.0.1 5.0.0.1",
  });
  ASSERT_EQ(graph.size(), 3u);
  EXPECT_EQ(graph.record_half_count(), 6u);
  // id = interface index * 2 + direction; records are in address order, so
  // ids enumerate (address, direction) lexicographically.
  for (HalfId id = 0; id < graph.record_half_count(); ++id) {
    const InterfaceHalf half = graph.half_at(id);
    EXPECT_EQ(graph.half_id(half), id);
    EXPECT_EQ(half.direction, (id & 1u) == 0 ? Direction::kForward
                                             : Direction::kBackward);
    EXPECT_EQ(half.address, graph.interfaces()[id / 2].address);
  }
  EXPECT_EQ(graph.half_id(forward_half(addr("99.0.0.1"))), kInvalidHalfId);
}

TEST(InterfaceGraphDense, PhantomOtherSidesGetIdsAfterRecords) {
  const InterfaceGraph graph = graph_of({
      "0|9.9.9.9|1.0.0.1 2.0.0.1",
  });
  // 2.0.0.2 (other side of 2.0.0.1) appears in no trace: a phantom. It
  // gets ids above every record half, with no neighbours of its own.
  EXPECT_GT(graph.phantom_count(), 0u);
  EXPECT_EQ(graph.half_count(),
            graph.record_half_count() + 2 * graph.phantom_count());
  const HalfId phantom = graph.half_id(forward_half(addr("2.0.0.2")));
  ASSERT_NE(phantom, kInvalidHalfId);
  EXPECT_GE(phantom, graph.record_half_count());
  EXPECT_EQ(graph.address_at(phantom), addr("2.0.0.2"));
  EXPECT_TRUE(graph.neighbor_ids(phantom).empty());
  EXPECT_TRUE(graph.reverse_neighbor_ids(phantom).empty());
}

TEST(InterfaceGraphDense, NeighborIdSpansMirrorNeighborLists) {
  const InterfaceGraph graph = graph_of({
      "0|9.9.9.9|1.0.0.1 5.0.0.1 2.0.0.1",
      "1|9.9.9.9|1.0.0.2 5.0.0.1 2.0.0.2",
  });
  for (HalfId id = 0; id < graph.record_half_count(); ++id) {
    const InterfaceHalf half = graph.half_at(id);
    const auto& addresses = graph.neighbors(half);
    const auto ids = graph.neighbor_ids(id);
    ASSERT_EQ(ids.size(), addresses.size()) << half.to_string();
    for (std::size_t k = 0; k < ids.size(); ++k) {
      // Span entries are the opposite-direction halves of the neighbour
      // addresses, in the same (sorted) order as the address list.
      EXPECT_EQ(graph.half_at(ids[k]),
                (InterfaceHalf{addresses[k], opposite(half.direction)}))
          << half.to_string();
    }
  }
}

TEST(InterfaceGraphDense, ReverseAdjacencyInvertsNeighborSpans) {
  const InterfaceGraph graph = graph_of({
      "0|9.9.9.9|1.0.0.1 5.0.0.1 2.0.0.1",
      "1|9.9.9.9|1.0.0.2 5.0.0.1 2.0.0.2",
      "2|9.9.9.9|2.0.0.1 5.0.0.1",
  });
  // h appears in reverse_neighbor_ids(g) exactly when g appears in
  // neighbor_ids(h), and the reverse lists are sorted ascending (the
  // engine's dirty-set sweeps rely on that for deterministic order).
  for (HalfId g = 0; g < graph.half_count(); ++g) {
    const auto reverse = graph.reverse_neighbor_ids(g);
    EXPECT_TRUE(std::is_sorted(reverse.begin(), reverse.end()));
    for (HalfId h : reverse) {
      const auto forward = graph.neighbor_ids(h);
      EXPECT_NE(std::find(forward.begin(), forward.end(), g), forward.end());
    }
  }
  std::size_t forward_total = 0;
  std::size_t reverse_total = 0;
  for (HalfId id = 0; id < graph.half_count(); ++id) {
    forward_total += graph.neighbor_ids(id).size();
    reverse_total += graph.reverse_neighbor_ids(id).size();
  }
  EXPECT_EQ(forward_total, reverse_total);
}

TEST(InterfaceGraphDense, OtherSideIdsMatchOtherSideHalves) {
  const InterfaceGraph graph = graph_of({
      "0|9.9.9.9|1.0.0.1 2.0.0.1",
      "1|9.9.9.9|1.0.0.2 2.0.0.2",
  });
  for (HalfId id = 0; id < graph.record_half_count(); ++id) {
    const InterfaceHalf other = graph.other_side_half(graph.half_at(id));
    ASSERT_NE(graph.other_side_id(id), kInvalidHalfId);
    EXPECT_EQ(graph.half_at(graph.other_side_id(id)), other);
  }
}

TEST(InterfaceHalfType, NotationAndOpposite) {
  const InterfaceHalf half = forward_half(addr("198.71.46.180"));
  EXPECT_EQ(half.to_string(), "198.71.46.180_f");
  EXPECT_EQ(backward_half(addr("1.2.3.4")).to_string(), "1.2.3.4_b");
  EXPECT_EQ(opposite(Direction::kForward), Direction::kBackward);
  EXPECT_EQ(opposite(Direction::kBackward), Direction::kForward);
  EXPECT_NE(std::hash<InterfaceHalf>{}(forward_half(addr("1.2.3.4"))),
            std::hash<InterfaceHalf>{}(backward_half(addr("1.2.3.4"))));
}

}  // namespace
}  // namespace mapit::graph
