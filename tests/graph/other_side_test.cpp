#include "graph/other_side.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "test_util.h"

namespace mapit::graph {
namespace {

using testutil::addr;

OtherSideMap build(std::initializer_list<const char*> addresses) {
  std::vector<net::Ipv4Address> list;
  for (const char* a : addresses) list.push_back(addr(a));
  return OtherSideMap(list);
}

TEST(OtherSide, ReservedSlotMustBeSlash31) {
  // Low bits 00 and 11 cannot be /30 hosts, so they are /31-numbered.
  const OtherSideMap map = build({"1.0.0.0", "1.0.0.3"});
  EXPECT_EQ(map.other_side(addr("1.0.0.0")).address, addr("1.0.0.1"));
  EXPECT_EQ(map.other_side(addr("1.0.0.0")).inference,
            PrefixInference::kSlash31Reserved);
  EXPECT_EQ(map.other_side(addr("1.0.0.3")).address, addr("1.0.0.2"));
  EXPECT_TRUE(map.other_side(addr("1.0.0.3")).is_slash31());
}

TEST(OtherSide, DefaultAssumptionIsSlash30) {
  // A lone host address with no witness: assume /30 (paper §4.2).
  const OtherSideMap map = build({"1.0.0.1"});
  const OtherSide result = map.other_side(addr("1.0.0.1"));
  EXPECT_EQ(result.address, addr("1.0.0.2"));
  EXPECT_EQ(result.inference, PrefixInference::kSlash30);
  EXPECT_FALSE(result.is_slash31());
}

TEST(OtherSide, WitnessFlipsToSlash31) {
  // Seeing 1.0.0.0 (reserved in 1.0.0.1's /30) proves /31 numbering.
  const OtherSideMap map = build({"1.0.0.1", "1.0.0.0"});
  const OtherSide result = map.other_side(addr("1.0.0.1"));
  EXPECT_EQ(result.address, addr("1.0.0.0"));
  EXPECT_EQ(result.inference, PrefixInference::kSlash31Witness);
}

TEST(OtherSide, HighReservedWitnessAlsoCounts) {
  // 1.0.0.3 is the other reserved slot of 1.0.0.1's /30.
  const OtherSideMap map = build({"1.0.0.1", "1.0.0.3"});
  EXPECT_EQ(map.other_side(addr("1.0.0.1")).inference,
            PrefixInference::kSlash31Witness);
  EXPECT_EQ(map.other_side(addr("1.0.0.1")).address, addr("1.0.0.0"));
}

TEST(OtherSide, PairedSlash30HostsStaySlash30) {
  // Both /30 hosts present, no reserved witness: classic /30 link.
  const OtherSideMap map = build({"1.0.0.1", "1.0.0.2"});
  EXPECT_EQ(map.other_side(addr("1.0.0.1")).address, addr("1.0.0.2"));
  EXPECT_EQ(map.other_side(addr("1.0.0.2")).address, addr("1.0.0.1"));
  EXPECT_FALSE(map.other_side(addr("1.0.0.1")).is_slash31());
}

TEST(OtherSide, UnknownAddressGetsDeterministicAnswer) {
  const OtherSideMap map = build({"1.0.0.0"});
  // 2.0.0.2 is not in the build set; decided against the same witnesses.
  EXPECT_EQ(map.other_address(addr("2.0.0.2")), addr("2.0.0.1"));
}

TEST(OtherSide, Slash31FractionStatistic) {
  // 1.0.0.0 (/31 reserved), 1.0.0.1 (witness -> /31), 2.0.0.1 (/30).
  const OtherSideMap map = build({"1.0.0.0", "1.0.0.1", "2.0.0.1"});
  EXPECT_NEAR(map.slash31_fraction(), 2.0 / 3.0, 1e-9);
}

TEST(OtherSide, EmptyMap) {
  const OtherSideMap map((std::vector<net::Ipv4Address>()));
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.slash31_fraction(), 0.0);
}

// ---------------------------------------------------------------------------
// Property: on any dataset, the other-side relation restricted to dataset
// members is an involution — a's other side maps back to a whenever both
// are in the dataset.
// ---------------------------------------------------------------------------

class OtherSideInvolutionTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(OtherSideInvolutionTest, InvolutionOnDatasetMembers) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> base_dist(0x01000000,
                                                         0x0100FFFF);
  std::vector<net::Ipv4Address> dataset;
  std::unordered_set<net::Ipv4Address> in_set;
  for (int i = 0; i < 400; ++i) {
    const net::Ipv4Address a(base_dist(rng));
    if (in_set.insert(a).second) dataset.push_back(a);
  }
  const OtherSideMap map(dataset);
  for (net::Ipv4Address a : dataset) {
    const net::Ipv4Address other = map.other_address(a);
    if (in_set.contains(other)) {
      EXPECT_EQ(map.other_address(other), a)
          << a.to_string() << " <-> " << other.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OtherSideInvolutionTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace mapit::graph
