// bdrmap-lite tests: host-network restriction, observation thresholds,
// cone consistency, and precision on the vantage-point network.
#include "baselines/bdrmap_lite.h"

#include <gtest/gtest.h>

#include "baselines/claims.h"
#include "eval/experiment.h"
#include "test_util.h"

namespace mapit::baselines {
namespace {

class BdrmapTest : public ::testing::Test {
 protected:
  static const eval::Experiment& experiment() {
    static const auto instance =
        eval::Experiment::build(eval::ExperimentConfig::small());
    return *instance;
  }

  /// Monitor ids hosted inside `asn` under the experiment's placement.
  static std::vector<trace::MonitorId> monitors_in(asdata::Asn asn) {
    // The simulator places monitor 0 in the R&E network (§5.1); recover
    // the placement from the corpus is unnecessary — rebuild it.
    std::vector<trace::MonitorId> out;
    route::AsRouting routing(experiment().internet().true_relationships());
    route::Forwarder forwarder(experiment().internet(), routing);
    tracesim::TracerouteSimulator simulator(
        experiment().internet(), forwarder,
        experiment().config().simulation);
    for (const tracesim::Monitor& monitor : simulator.monitors()) {
      if (monitor.asn == asn) out.push_back(monitor.id);
    }
    return out;
  }
};

TEST_F(BdrmapTest, HostNetworkHasAMonitor) {
  EXPECT_FALSE(monitors_in(topo::Generator::rne_asn()).empty());
}

TEST_F(BdrmapTest, AllClaimsInvolveTheHostNetwork) {
  const asdata::Asn host = topo::Generator::rne_asn();
  const Claims claims = bdrmap_lite(
      experiment().corpus(), monitors_in(host), host, experiment().ip2as(),
      experiment().relationships(), experiment().orgs());
  ASSERT_FALSE(claims.empty());
  for (const Claim& claim : claims) {
    EXPECT_TRUE(claim.a == host || claim.b == host) << claim.a << " " << claim.b;
  }
}

TEST_F(BdrmapTest, HighPrecisionOnTheVantagePointNetwork) {
  const asdata::Asn host = topo::Generator::rne_asn();
  const Claims claims = bdrmap_lite(
      experiment().corpus(), monitors_in(host), host, experiment().ip2as(),
      experiment().relationships(), experiment().orgs());
  const eval::AsGroundTruth truth = experiment().ground_truth(host);
  const eval::Verification v = experiment().evaluator().verify(truth, claims);
  // bdrmap's design point: precise for the hosting network (the paper
  // quotes 96.3-98.9% for real bdrmap).
  EXPECT_GE(v.total.precision(), 0.85);
  EXPECT_GT(v.total.tp, 0u);
}

TEST_F(BdrmapTest, CannotCoverNetworksWithoutVantagePoints) {
  // The restriction MAP-IT lifts (§2): borders are only found for the
  // monitor-hosting network. Running bdrmap for the host finds nothing
  // useful about a remote tier-1's links beyond those it shares with the
  // host itself.
  const asdata::Asn host = topo::Generator::rne_asn();
  const Claims claims = bdrmap_lite(
      experiment().corpus(), monitors_in(host), host, experiment().ip2as(),
      experiment().relationships(), experiment().orgs());
  const asdata::Asn tier1 = topo::Generator::tier1_a();
  const eval::AsGroundTruth truth = experiment().ground_truth(tier1);
  const eval::Verification v = experiment().evaluator().verify(truth, claims);
  // At most the direct host<->tier1 links can be credited.
  std::size_t host_tier1_links = 0;
  for (const eval::LinkTruth& link : truth.links()) {
    if (link.remote == host) ++host_tier1_links;
  }
  EXPECT_LE(v.total.tp, host_tier1_links);
}

TEST_F(BdrmapTest, ObservationThresholdFilters) {
  const asdata::Asn host = topo::Generator::rne_asn();
  BdrmapConfig strict;
  strict.min_observations = 1000;  // impossible
  const Claims none = bdrmap_lite(
      experiment().corpus(), monitors_in(host), host, experiment().ip2as(),
      experiment().relationships(), experiment().orgs(), strict);
  EXPECT_TRUE(none.empty());

  BdrmapConfig loose;
  loose.min_observations = 1;
  const Claims many = bdrmap_lite(
      experiment().corpus(), monitors_in(host), host, experiment().ip2as(),
      experiment().relationships(), experiment().orgs(), loose);
  BdrmapConfig standard;
  const Claims normal = bdrmap_lite(
      experiment().corpus(), monitors_in(host), host, experiment().ip2as(),
      experiment().relationships(), experiment().orgs(), standard);
  EXPECT_GE(many.size(), normal.size());
}

TEST_F(BdrmapTest, ConeConsistencyReducesClaims) {
  const asdata::Asn host = topo::Generator::rne_asn();
  BdrmapConfig with;
  BdrmapConfig without;
  without.require_cone_consistency = false;
  const Claims strict = bdrmap_lite(
      experiment().corpus(), monitors_in(host), host, experiment().ip2as(),
      experiment().relationships(), experiment().orgs(), with);
  const Claims permissive = bdrmap_lite(
      experiment().corpus(), monitors_in(host), host, experiment().ip2as(),
      experiment().relationships(), experiment().orgs(), without);
  EXPECT_LE(strict.size(), permissive.size());
}

TEST_F(BdrmapTest, NoMonitorsNoClaims) {
  const Claims claims = bdrmap_lite(
      experiment().corpus(), {}, topo::Generator::rne_asn(),
      experiment().ip2as(), experiment().relationships(),
      experiment().orgs());
  EXPECT_TRUE(claims.empty());
}

TEST(BdrmapUnit, HandCraftedBorderDetection) {
  using testutil::corpus_from;
  using testutil::rib_from;
  // Monitor 0 sits in AS100; traces leave toward AS200's cone.
  const auto corpus = corpus_from({
      "0|2.0.0.99|1.0.0.1 1.0.0.9 2.0.0.2 2.0.0.50",
      "0|2.0.0.77|1.0.0.5 1.0.0.9 2.0.0.2 2.0.0.60",
      "1|2.0.0.99|1.0.0.1 1.0.0.9 2.0.0.2",  // other monitor, also in AS100
  });
  const bgp::Ip2As ip2as(rib_from({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}}));
  asdata::AsRelationships rels;
  rels.add_transit(100, 200);
  const asdata::As2Org orgs;
  const Claims claims =
      bdrmap_lite(corpus, {0, 1}, 100, ip2as, rels, orgs);
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims[0].address, testutil::addr("2.0.0.2"));
  EXPECT_EQ(claims[0].a, 100u);
  EXPECT_EQ(claims[0].b, 200u);
}

TEST(BdrmapUnit, SharedPrefixClaimsBothSides) {
  using testutil::corpus_from;
  using testutil::rib_from;
  // The host->neighbor transition happens across a /30 pair
  // (1.0.0.9 / 1.0.0.10 are the two hosts of 1.0.0.8/30) — wait, the far
  // side must be in the neighbour's space for a transition; use a
  // neighbour-named link instead: 2.0.0.1/2.0.0.2 with the near side
  // 2.0.0.1 NOT in host space. Transition is host-internal 1.0.0.9 ->
  // 2.0.0.2; different /30s, so only the far side is claimed.
  const auto corpus = corpus_from({
      "0|2.0.0.99|1.0.0.9 2.0.0.2 2.0.0.50",
      "0|2.0.0.77|1.0.0.9 2.0.0.2 2.0.0.60",
  });
  const bgp::Ip2As ip2as(rib_from({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}}));
  asdata::AsRelationships rels;
  rels.add_transit(100, 200);
  const Claims claims =
      bdrmap_lite(corpus, {0}, 100, ip2as, rels, asdata::As2Org{});
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims[0].address, testutil::addr("2.0.0.2"));
}

TEST(BdrmapUnit, HostNamedLinkClaimsBothSides) {
  using testutil::corpus_from;
  using testutil::rib_from;
  // Host-named border: 1.0.0.9 (host egress) and 1.0.0.10 would share the
  // /30 — but then the far hop is in host space and no transition fires.
  // The realistic both-sides case: neighbour-named /30 where the last host
  // hop IS the near link interface (2.0.0.1 in neighbour space is
  // impossible to be "in host"), so test the same-/30 path with an
  // unannounced-side... Simplest: transition 2.0.0.1 -> 2.0.0.2 cannot be
  // host->foreign. Therefore the same-/30 branch triggers only via
  // host-space /30s that the IP2AS maps to the host on one side and the
  // neighbour on the other — a MOAS-style split:
  const auto corpus = corpus_from({
      "0|9.0.0.99|1.0.0.5 1.0.0.9 1.0.0.10 9.0.0.50",
      "0|9.0.0.77|1.0.0.5 1.0.0.9 1.0.0.10 9.0.0.60",
  });
  // 1.0.0.10 falls in a more specific prefix announced by the neighbour
  // (the customer-assigned-from-provider-space situation).
  const bgp::Ip2As ip2as(rib_from({{"1.0.0.0/16", 100},
                                   {"1.0.0.10/31", 900},
                                   {"9.0.0.0/16", 900}}));
  asdata::AsRelationships rels;
  rels.add_transit(100, 900);
  const Claims claims =
      bdrmap_lite(corpus, {0}, 100, ip2as, rels, asdata::As2Org{});
  // Both 1.0.0.9 and 1.0.0.10 share 1.0.0.8/30 -> both sides claimed.
  ASSERT_EQ(claims.size(), 2u);
  EXPECT_EQ(claims[0].address, testutil::addr("1.0.0.9"));
  EXPECT_EQ(claims[1].address, testutil::addr("1.0.0.10"));
}

}  // namespace
}  // namespace mapit::baselines
