// ITDK-style router-graph baseline tests: behaviour at the error-free
// extreme, the effect of splits and false merges, and determinism.
#include "baselines/itdk.h"

#include <gtest/gtest.h>

#include "route/as_routing.h"
#include "route/forwarder.h"
#include "topo/generator.h"
#include "tracesim/simulator.h"
#include "trace/sanitize.h"

namespace mapit::baselines {
namespace {

class ItdkTest : public ::testing::Test {
 protected:
  static topo::GeneratorConfig topo_config() {
    topo::GeneratorConfig c;
    c.seed = 17;
    c.tier1_count = 3;
    c.transit_count = 12;
    c.stub_count = 40;
    c.rne_customer_count = 6;
    return c;
  }

  ItdkTest()
      : net_(topo::Generator(topo_config()).generate()),
        routing_(net_.true_relationships()),
        forwarder_(net_, routing_) {
    tracesim::SimulatorConfig sim;
    sim.seed = 29;
    sim.monitor_count = 6;
    sim.destinations_per_prefix = 1;
    tracesim::TracerouteSimulator simulator(net_, forwarder_, sim);
    corpus_ = trace::sanitize(simulator.run_campaign(nullptr)).clean;
    rib_ = net_.export_rib(topo::DatasetNoise{}, 7);
    ip2as_ = std::make_unique<bgp::Ip2As>(rib_);
  }

  topo::Internet net_;
  route::AsRouting routing_;
  route::Forwarder forwarder_;
  trace::TraceCorpus corpus_;
  bgp::Rib rib_;
  std::unique_ptr<bgp::Ip2As> ip2as_;
};

TEST_F(ItdkTest, DeterministicForSameConfig) {
  const AliasConfig config = AliasConfig::midar();
  const Claims a = itdk_router_graph(corpus_, net_, *ip2as_, config);
  const Claims b = itdk_router_graph(corpus_, net_, *ip2as_, config);
  EXPECT_EQ(a, b);
}

TEST_F(ItdkTest, PerfectAliasResolutionStillMakesElectionErrors) {
  // Even with no split/merge errors, router-to-AS election mis-assigns
  // border routers whose interfaces are mostly neighbour-numbered — the
  // core reason router graphs struggle at boundaries (§5.6).
  AliasConfig perfect;
  perfect.split_prob = 0.0;
  perfect.false_merge_prob = 0.0;
  const Claims claims = itdk_router_graph(corpus_, net_, *ip2as_, perfect);
  EXPECT_FALSE(claims.empty());
}

TEST_F(ItdkTest, FullSplitDegeneratesToPerInterfaceNodes) {
  AliasConfig shattered;
  shattered.split_prob = 1.0;
  shattered.false_merge_prob = 0.0;
  const Claims claims = itdk_router_graph(corpus_, net_, *ip2as_, shattered);
  // With singleton clusters the graph reduces to the Simple heuristic's
  // adjacency view: plenty of claims.
  EXPECT_GT(claims.size(), 50u);
}

TEST_F(ItdkTest, MergesReduceInterAsAdjacencies) {
  // Aggressively merging trace-adjacent clusters absorbs boundaries, so a
  // kapar-like config should not produce *more* claims than a fully split
  // one on the same corpus.
  AliasConfig shattered;
  shattered.split_prob = 1.0;
  shattered.false_merge_prob = 0.0;
  AliasConfig merged;
  merged.split_prob = 0.0;
  merged.false_merge_prob = 0.9;
  const Claims many = itdk_router_graph(corpus_, net_, *ip2as_, shattered);
  const Claims fewer = itdk_router_graph(corpus_, net_, *ip2as_, merged);
  EXPECT_LT(fewer.size(), many.size());
}

TEST_F(ItdkTest, PresetConfigs) {
  EXPECT_LT(AliasConfig::midar().false_merge_prob,
            AliasConfig::kapar().false_merge_prob);
  EXPECT_GT(AliasConfig::midar().split_prob, AliasConfig::kapar().split_prob);
}

TEST_F(ItdkTest, ClaimsAreNormalized) {
  const Claims claims =
      itdk_router_graph(corpus_, net_, *ip2as_, AliasConfig::midar());
  for (std::size_t i = 1; i < claims.size(); ++i) {
    EXPECT_LT(claims[i - 1], claims[i]);
  }
  for (const Claim& claim : claims) {
    EXPECT_LE(claim.a, claim.b);
    EXPECT_NE(claim.a, claim.b);
  }
}

}  // namespace
}  // namespace mapit::baselines
