// Simple / Convention heuristic tests, including the customer-space
// failure mode the paper demonstrates with Internet2.
#include "baselines/simple.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mapit::baselines {
namespace {

using testutil::addr;
using testutil::corpus_from;
using testutil::rib_from;

TEST(SimpleHeuristic, ClaimsFirstAddressInNewAs) {
  const auto corpus = corpus_from({
      "0|9.9.9.9|1.0.0.1 1.0.0.2 2.0.0.1 2.0.0.2",
  });
  const bgp::Ip2As ip2as(rib_from({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}}));
  const Claims claims = simple_heuristic(corpus, ip2as);
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims[0].address, addr("2.0.0.1"));
  EXPECT_EQ(claims[0].a, 100u);
  EXPECT_EQ(claims[0].b, 200u);
}

TEST(SimpleHeuristic, EveryAsSwitchClaims) {
  // Third-party-style noise: each switch in the trace produces a claim,
  // which is exactly why the heuristic's precision is poor.
  const auto corpus = corpus_from({
      "0|9.9.9.9|1.0.0.1 2.0.0.1 3.0.0.1 1.0.0.5",
  });
  const bgp::Ip2As ip2as(rib_from(
      {{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}, {"3.0.0.0/16", 300}}));
  const Claims claims = simple_heuristic(corpus, ip2as);
  EXPECT_EQ(claims.size(), 3u);
}

TEST(SimpleHeuristic, SkipsUnknownAndNullHops) {
  const auto corpus = corpus_from({
      "0|9.9.9.9|1.0.0.1 * 2.0.0.1",      // null hop breaks adjacency
      "1|9.9.9.9|1.0.0.1 66.0.0.1",       // unannounced neighbour
  });
  const bgp::Ip2As ip2as(rib_from({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}}));
  EXPECT_TRUE(simple_heuristic(corpus, ip2as).empty());
}

TEST(SimpleHeuristic, DeduplicatesAcrossTraces) {
  const auto corpus = corpus_from({
      "0|9.9.9.9|1.0.0.1 2.0.0.1",
      "1|9.9.9.9|1.0.0.1 2.0.0.1",
  });
  const bgp::Ip2As ip2as(rib_from({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}}));
  EXPECT_EQ(simple_heuristic(corpus, ip2as).size(), 1u);
}

TEST(ConventionHeuristic, PrefersProviderAddressOnTransitLinks) {
  // Provider-named transit link: hops [provider-internal][customer border
  // ingress in provider space? no —] the convention heuristic just picks
  // whichever adjacent address is in the provider's space.
  const auto corpus = corpus_from({
      "0|9.9.9.9|1.0.0.1 2.0.0.1",  // AS100 (provider) then AS200 (customer)
  });
  const bgp::Ip2As ip2as(rib_from({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}}));
  asdata::AsRelationships rels;
  rels.add_transit(100, 200);
  const Claims claims = convention_heuristic(corpus, ip2as, rels);
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims[0].address, addr("1.0.0.1"));  // provider-space address
}

TEST(ConventionHeuristic, CustomerDirectionPicksProviderSide) {
  const auto corpus = corpus_from({
      "0|9.9.9.9|2.0.0.1 1.0.0.1",  // customer then provider
  });
  const bgp::Ip2As ip2as(rib_from({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}}));
  asdata::AsRelationships rels;
  rels.add_transit(100, 200);
  const Claims claims = convention_heuristic(corpus, ip2as, rels);
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims[0].address, addr("1.0.0.1"));
}

TEST(ConventionHeuristic, FallsBackToSimpleForPeers) {
  const auto corpus = corpus_from({
      "0|9.9.9.9|1.0.0.1 2.0.0.1",
  });
  const bgp::Ip2As ip2as(rib_from({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}}));
  asdata::AsRelationships rels;
  rels.add_peering(100, 200);
  const Claims claims = convention_heuristic(corpus, ip2as, rels);
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims[0].address, addr("2.0.0.1"));  // Simple's choice
}

TEST(ConventionHeuristic, CustomerNamedLinksFoolTheConvention) {
  // The Internet2 failure mode: the link is numbered from the *customer's*
  // space, so the provider-space address the heuristic claims is actually
  // an internal provider interface.
  const auto corpus = corpus_from({
      // [provider internal 1.0.0.1][customer border ingress 2.0.0.9
      //  (customer-named link)][customer internal 2.0.0.17]
      "0|9.9.9.9|1.0.0.1 2.0.0.9 2.0.0.17",
  });
  const bgp::Ip2As ip2as(rib_from({{"1.0.0.0/16", 100}, {"2.0.0.0/16", 200}}));
  asdata::AsRelationships rels;
  rels.add_transit(100, 200);
  const Claims claims = convention_heuristic(corpus, ip2as, rels);
  ASSERT_EQ(claims.size(), 1u);
  // Claims the provider-side internal interface — a false positive — and
  // misses the true link interface 2.0.0.9.
  EXPECT_EQ(claims[0].address, addr("1.0.0.1"));
}

TEST(MakeClaim, NormalizesPairOrder) {
  const Claim claim = make_claim(addr("1.2.3.4"), 300, 100);
  EXPECT_EQ(claim.a, 100u);
  EXPECT_EQ(claim.b, 300u);
}

TEST(Normalize, SortsAndDeduplicates) {
  Claims claims = {make_claim(addr("2.0.0.1"), 1, 2),
                   make_claim(addr("1.0.0.1"), 3, 4),
                   make_claim(addr("2.0.0.1"), 1, 2)};
  normalize(claims);
  ASSERT_EQ(claims.size(), 2u);
  EXPECT_EQ(claims[0].address, addr("1.0.0.1"));
}

}  // namespace
}  // namespace mapit::baselines
