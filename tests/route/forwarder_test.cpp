// Router-level forwarding tests: path validity, hot-potato egress,
// determinism, and variant behaviour.
#include "route/forwarder.h"

#include <gtest/gtest.h>

#include "topo/generator.h"

namespace mapit::route {
namespace {

class ForwarderTest : public ::testing::Test {
 protected:
  static topo::GeneratorConfig config() {
    topo::GeneratorConfig c;
    c.seed = 5;
    c.tier1_count = 3;
    c.transit_count = 15;
    c.stub_count = 60;
    c.rne_customer_count = 8;
    return c;
  }

  ForwarderTest()
      : net_(topo::Generator(config()).generate()),
        routing_(net_.true_relationships()),
        forwarder_(net_, routing_) {}

  /// Validates physical continuity: each hop's in_link connects it to the
  /// previous hop's router.
  void expect_continuous(const std::vector<RouterHop>& path) {
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front().in_link, topo::kNoLink);
    for (std::size_t i = 1; i < path.size(); ++i) {
      ASSERT_NE(path[i].in_link, topo::kNoLink) << "hop " << i;
      const topo::Link& link = net_.link(path[i].in_link);
      EXPECT_TRUE((link.a == path[i - 1].router && link.b == path[i].router) ||
                  (link.b == path[i - 1].router && link.a == path[i].router))
          << "hop " << i;
    }
  }

  topo::Internet net_;
  AsRouting routing_;
  Forwarder forwarder_;
};

TEST_F(ForwarderTest, PathsArePhysicallyContinuous) {
  const auto destinations = net_.probe_destinations(1, 3);
  const topo::RouterId source = net_.ases().front().routers.front();
  int checked = 0;
  for (std::size_t i = 0; i < destinations.size(); i += 5) {
    const auto path = forwarder_.path(source, destinations[i]);
    if (path.empty()) continue;
    expect_continuous(path);
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST_F(ForwarderTest, PathEndsInDestinationAs) {
  const auto destinations = net_.probe_destinations(1, 3);
  const topo::RouterId source = net_.ases().front().routers.front();
  for (std::size_t i = 0; i < destinations.size(); i += 11) {
    const auto path = forwarder_.path(source, destinations[i]);
    if (path.empty()) continue;
    const asdata::Asn dest_as = forwarder_.true_origin(destinations[i]);
    EXPECT_EQ(net_.router(path.back().router).owner, dest_as);
    EXPECT_EQ(path.back().router,
              forwarder_.attachment_router(dest_as, destinations[i]));
  }
}

TEST_F(ForwarderTest, RouterSequenceFollowsAsPath) {
  const auto destinations = net_.probe_destinations(1, 3);
  const topo::RouterId source = net_.ases().front().routers.front();
  for (std::size_t i = 0; i < destinations.size(); i += 13) {
    const auto path = forwarder_.path(source, destinations[i]);
    if (path.empty()) continue;
    // Collapse the router path to an AS sequence.
    std::vector<asdata::Asn> as_sequence;
    for (const RouterHop& hop : path) {
      const asdata::Asn owner = net_.router(hop.router).owner;
      if (as_sequence.empty() || as_sequence.back() != owner) {
        as_sequence.push_back(owner);
      }
    }
    const auto expected = routing_.as_path(
        net_.router(source).owner, forwarder_.true_origin(destinations[i]));
    EXPECT_EQ(as_sequence, expected);
  }
}

TEST_F(ForwarderTest, DeterministicForSameVariant) {
  const auto destinations = net_.probe_destinations(1, 3);
  const topo::RouterId source = net_.ases().front().routers.front();
  for (std::size_t i = 0; i < destinations.size(); i += 17) {
    EXPECT_EQ(forwarder_.path(source, destinations[i], 0),
              forwarder_.path(source, destinations[i], 0));
  }
}

TEST_F(ForwarderTest, SomeVariantsDiverge) {
  // Variant 2 flips to second-best egress where parallel links exist; over
  // many destinations at least one path must change.
  const auto destinations = net_.probe_destinations(1, 3);
  const topo::RouterId source = net_.ases().front().routers.front();
  bool any_divergence = false;
  for (net::Ipv4Address destination : destinations) {
    const auto base = forwarder_.path(source, destination, 0);
    const auto flipped = forwarder_.path(source, destination, 2);
    if (!base.empty() && !flipped.empty() && base != flipped) {
      any_divergence = true;
      expect_continuous(flipped);
      break;
    }
  }
  EXPECT_TRUE(any_divergence);
}

TEST_F(ForwarderTest, IntraAsPathBasics) {
  // Any two routers of a tier-1 AS are connected by internal links.
  const topo::AsInfo& tier1 = net_.as_info(topo::Generator::tier1_a());
  ASSERT_GE(tier1.routers.size(), 2u);
  const auto path = forwarder_.intra_as_path(tier1.routers.front(),
                                             tier1.routers.back(), 0);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front().router, tier1.routers.front());
  EXPECT_EQ(path.back().router, tier1.routers.back());
  for (const RouterHop& hop : path) {
    EXPECT_EQ(net_.router(hop.router).owner, tier1.asn);
  }
  // Trivial path.
  const auto self = forwarder_.intra_as_path(tier1.routers.front(),
                                             tier1.routers.front(), 0);
  ASSERT_EQ(self.size(), 1u);
}

TEST_F(ForwarderTest, TrueOriginMatchesAnnouncedSpace) {
  for (const topo::AsInfo& info : net_.ases()) {
    const net::Ipv4Address probe(info.announced.front().network().value() + 1);
    EXPECT_EQ(forwarder_.true_origin(probe), info.asn);
  }
  EXPECT_EQ(forwarder_.true_origin(net::Ipv4Address(203, 1, 1, 1)),
            asdata::kUnknownAsn);
}

TEST_F(ForwarderTest, UnknownDestinationYieldsEmptyPath) {
  const topo::RouterId source = net_.ases().front().routers.front();
  EXPECT_TRUE(forwarder_.path(source, net::Ipv4Address(203, 1, 1, 1)).empty());
}

}  // namespace
}  // namespace mapit::route
