// Gao-Rexford routing tests: preference order, export rules, determinism,
// and a valley-free property sweep over generated topologies.
#include "route/as_routing.h"

#include <gtest/gtest.h>

#include <set>

#include "topo/generator.h"

namespace mapit::route {
namespace {

using asdata::AsRelationships;
using asdata::Asn;

TEST(AsRouting, SelfRoute) {
  AsRelationships rels;
  rels.add_transit(1, 2);
  const AsRouting routing(rels);
  const auto entry = routing.route(2, 2);
  EXPECT_EQ(entry.type, RouteType::kSelf);
  EXPECT_EQ(entry.length, 0);
  EXPECT_EQ(routing.as_path(2, 2), (std::vector<Asn>{2}));
}

TEST(AsRouting, CustomerRoutePreferredOverPeerAndProvider) {
  // 10 can reach 99 via its customer 20, via its peer 30, or via its
  // provider 40 — all of which sit one hop from 99.
  AsRelationships rels;
  rels.add_transit(10, 20);   // 20 is 10's customer
  rels.add_peering(10, 30);
  rels.add_transit(40, 10);   // 40 is 10's provider
  rels.add_transit(20, 99);
  rels.add_transit(30, 99);
  rels.add_transit(40, 99);
  const AsRouting routing(rels);
  const auto entry = routing.route(10, 99);
  EXPECT_EQ(entry.type, RouteType::kCustomer);
  EXPECT_EQ(entry.next, 20u);
  EXPECT_EQ(routing.as_path(10, 99), (std::vector<Asn>{10, 20, 99}));
}

TEST(AsRouting, PeerRouteWhenNoCustomerRoute) {
  AsRelationships rels;
  rels.add_peering(10, 30);
  rels.add_transit(30, 99);
  rels.add_transit(40, 10);
  rels.add_transit(40, 99);
  const AsRouting routing(rels);
  const auto entry = routing.route(10, 99);
  EXPECT_EQ(entry.type, RouteType::kPeer);
  EXPECT_EQ(entry.next, 30u);
}

TEST(AsRouting, ProviderRouteAsLastResort) {
  AsRelationships rels;
  rels.add_transit(40, 10);
  rels.add_transit(40, 99);
  const AsRouting routing(rels);
  const auto entry = routing.route(10, 99);
  EXPECT_EQ(entry.type, RouteType::kProvider);
  EXPECT_EQ(routing.as_path(10, 99), (std::vector<Asn>{10, 40, 99}));
}

TEST(AsRouting, PeerRoutesAreNotTransitive) {
  // 10 -- 20 -- 30 peerings only: 10 cannot reach 30 (no valley-free path).
  AsRelationships rels;
  rels.add_peering(10, 20);
  rels.add_peering(20, 30);
  const AsRouting routing(rels);
  EXPECT_EQ(routing.route(10, 30).type, RouteType::kNone);
  EXPECT_TRUE(routing.as_path(10, 30).empty());
}

TEST(AsRouting, PeerThenDownIsAllowed) {
  // 10 -- 20 (peer), 20 -> 30 (customer): 10 reaches 30 through the peer.
  AsRelationships rels;
  rels.add_peering(10, 20);
  rels.add_transit(20, 30);
  const AsRouting routing(rels);
  EXPECT_EQ(routing.as_path(10, 30), (std::vector<Asn>{10, 20, 30}));
}

TEST(AsRouting, UpThenPeerThenDown) {
  // Classic valley-free shape: 1 -> up to 2, across to 3, down to 4.
  AsRelationships rels;
  rels.add_transit(2, 1);
  rels.add_peering(2, 3);
  rels.add_transit(3, 4);
  const AsRouting routing(rels);
  EXPECT_EQ(routing.as_path(1, 4), (std::vector<Asn>{1, 2, 3, 4}));
}

TEST(AsRouting, ShorterCustomerRouteWins) {
  AsRelationships rels;
  rels.add_transit(10, 20);
  rels.add_transit(20, 99);  // length 2 via 20
  rels.add_transit(10, 99);  // length 1 direct
  const AsRouting routing(rels);
  const auto entry = routing.route(10, 99);
  EXPECT_EQ(entry.length, 1);
  EXPECT_EQ(entry.next, 99u);
}

TEST(AsRouting, TieBreaksTowardLowestNextHop) {
  AsRelationships rels;
  rels.add_transit(10, 21);
  rels.add_transit(10, 22);
  rels.add_transit(21, 99);
  rels.add_transit(22, 99);
  const AsRouting routing(rels);
  EXPECT_EQ(routing.route(10, 99).next, 21u);
}

TEST(AsRouting, UnknownDestinationUnreachable) {
  AsRelationships rels;
  rels.add_transit(1, 2);
  const AsRouting routing(rels);
  EXPECT_EQ(routing.route(1, 777).type, RouteType::kNone);
  EXPECT_TRUE(routing.as_path(1, 777).empty());
}

// ---------------------------------------------------------------------------
// Valley-free property over generated topologies: every computed path must
// match up* peer? down* with at most one peering edge.
// ---------------------------------------------------------------------------

class ValleyFreeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValleyFreeTest, AllSampledPathsAreValleyFree) {
  topo::GeneratorConfig config;
  config.seed = GetParam();
  config.tier1_count = 3;
  config.transit_count = 15;
  config.stub_count = 60;
  config.rne_customer_count = 8;
  const topo::Internet net = topo::Generator(config).generate();
  const AsRouting routing(net.true_relationships());

  const auto all = net.true_relationships().all_ases();
  int checked = 0;
  for (std::size_t i = 0; i < all.size(); i += 3) {
    for (std::size_t j = 1; j < all.size(); j += 7) {
      const auto path = routing.as_path(all[i], all[j]);
      if (path.empty()) continue;
      ++checked;
      // Phases: 0 = climbing (customer->provider), 1 = after the single
      // peering edge or the first descent (provider->customer only).
      int phase = 0;
      for (std::size_t k = 0; k + 1 < path.size(); ++k) {
        const auto rel =
            net.true_relationships().relationship(path[k], path[k + 1]);
        ASSERT_NE(rel, asdata::Relationship::kNone)
            << "non-edge in path " << path[k] << "->" << path[k + 1];
        if (rel == asdata::Relationship::kCustomer) {
          // climbing to a provider
          EXPECT_EQ(phase, 0) << "up after across/down";
        } else if (rel == asdata::Relationship::kPeer) {
          EXPECT_EQ(phase, 0) << "second peering or peer after down";
          phase = 1;
        } else {
          phase = 1;  // descending
        }
      }
      // No repeated ASes.
      std::set<Asn> unique(path.begin(), path.end());
      EXPECT_EQ(unique.size(), path.size());
    }
  }
  EXPECT_GT(checked, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValleyFreeTest, ::testing::Values(3, 9, 27));

}  // namespace
}  // namespace mapit::route
