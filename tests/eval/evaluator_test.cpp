// Verification-rule tests (§5.2): each TP/FP/FN accounting rule is
// exercised with crafted claim sets against a small experiment's truth.
#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace mapit::eval {
namespace {

using baselines::Claim;
using baselines::Claims;
using baselines::make_claim;

class EvaluatorTest : public ::testing::Test {
 protected:
  static const Experiment& experiment() {
    static const auto instance =
        Experiment::build(ExperimentConfig::small());
    return *instance;
  }

  static asdata::Asn target() { return topo::Generator::rne_asn(); }

  /// An eligible link of the exact ground truth (one must exist).
  static LinkTruth some_eligible_link(const AsGroundTruth& gt) {
    // Empty claims: every eligible link shows up as a false negative.
    const Verification v = experiment().evaluator().verify(gt, {});
    EXPECT_GT(v.total.fn, 0u);
    return v.false_negatives.front();
  }
};

TEST_F(EvaluatorTest, EmptyClaimsYieldOnlyFalseNegatives) {
  const AsGroundTruth gt = experiment().ground_truth(target());
  const Verification v = experiment().evaluator().verify(gt, {});
  EXPECT_EQ(v.total.tp, 0u);
  EXPECT_EQ(v.total.fp, 0u);
  EXPECT_GT(v.total.fn, 0u);
  EXPECT_LE(v.total.fn, gt.links().size());
  EXPECT_EQ(v.total.precision(), 1.0);  // vacuous
  EXPECT_EQ(v.total.recall(), 0.0);
}

TEST_F(EvaluatorTest, CorrectClaimCountsTheLinkOnce) {
  const AsGroundTruth gt = experiment().ground_truth(target());
  const LinkTruth link = some_eligible_link(gt);
  // Claims on both endpoints of the same link: one TP, not two.
  const Claims claims = {
      make_claim(link.addr_a, target(), link.recorded_remote),
      make_claim(link.addr_b, target(), link.recorded_remote),
  };
  const Verification v = experiment().evaluator().verify(gt, claims);
  EXPECT_EQ(v.total.tp, 1u);
  EXPECT_EQ(v.total.fp, 0u);
}

TEST_F(EvaluatorTest, WrongPairOnLinkAddressIsError) {
  const AsGroundTruth gt = experiment().ground_truth(target());
  const LinkTruth link = some_eligible_link(gt);
  const Claims claims = {
      make_claim(link.addr_a, target(), 424242),  // nobody's sibling
  };
  const Verification v = experiment().evaluator().verify(gt, claims);
  EXPECT_EQ(v.total.tp, 0u);
  EXPECT_EQ(v.total.fp, 1u);
}

TEST_F(EvaluatorTest, InternalInterfaceClaimIsError) {
  const AsGroundTruth gt = experiment().ground_truth(target());
  ASSERT_FALSE(gt.internal().empty());
  const net::Ipv4Address internal = *gt.internal().begin();
  const Claims claims = {make_claim(internal, target(), 424242)};
  const Verification v = experiment().evaluator().verify(gt, claims);
  EXPECT_EQ(v.total.fp, 1u);
}

TEST_F(EvaluatorTest, ExactTruthFlagsOffDatasetClaims) {
  const AsGroundTruth gt = experiment().ground_truth(target());
  ASSERT_TRUE(gt.is_exact());
  // A target-involving claim on an address the inventory does not know.
  const Claims claims = {
      make_claim(net::Ipv4Address(203, 99, 99, 99), target(), 424242)};
  const Verification v = experiment().evaluator().verify(gt, claims);
  EXPECT_EQ(v.total.fp, 1u);
}

TEST_F(EvaluatorTest, ApproximateTruthIgnoresUnverifiableClaims) {
  const asdata::Asn tier1 = topo::Generator::tier1_a();
  const AsGroundTruth gt = experiment().ground_truth(tier1);
  ASSERT_FALSE(gt.is_exact());
  // Same off-dataset shape as above: with hostname-derived truth this is
  // unverifiable and must NOT count as an error (§5.2).
  const Claims claims = {
      make_claim(net::Ipv4Address(203, 99, 99, 99), tier1, 424242)};
  const Verification v = experiment().evaluator().verify(gt, claims);
  EXPECT_EQ(v.total.fp, 0u);
}

TEST_F(EvaluatorTest, ApproximateTruthFlagsAdjacentSamePairClaims) {
  // §5.2: for hostname-derived truth, a claim naming a dataset link's pair
  // but made on an interface *adjacent to* that link is a verifiable error
  // ("inferences ... made on an adjacent interface in the connected AS").
  const asdata::Asn tier1 = topo::Generator::tier1_a();
  const AsGroundTruth gt = experiment().ground_truth(tier1);
  // Find a dataset link whose target-side address has a graph neighbour
  // that is itself off-dataset.
  for (const LinkTruth& link : gt.links()) {
    for (const net::Ipv4Address endpoint : {link.addr_a, link.addr_b}) {
      const graph::InterfaceRecord* record =
          experiment().graph().find(endpoint);
      if (record == nullptr) continue;
      for (const auto& neighbors : {record->forward, record->backward}) {
        for (const net::Ipv4Address neighbor : neighbors) {
          if (gt.link_of(neighbor) != nullptr) continue;
          if (gt.internal().contains(neighbor)) continue;
          // A claim on this adjacent interface naming the link's pair.
          const Claims claims = {
              make_claim(neighbor, tier1, link.recorded_remote)};
          const Verification v = experiment().evaluator().verify(gt, claims);
          EXPECT_EQ(v.total.fp, 1u)
              << neighbor.to_string() << " adjacent to "
              << endpoint.to_string();
          return;  // one verified instance suffices
        }
      }
    }
  }
  GTEST_SKIP() << "no suitable adjacent interface in this corpus";
}

TEST_F(EvaluatorTest, ClaimsNotInvolvingTargetAreOutOfScope) {
  const AsGroundTruth gt = experiment().ground_truth(target());
  const Claims claims = {
      make_claim(net::Ipv4Address(203, 99, 99, 99), 424242, 535353)};
  const Verification v = experiment().evaluator().verify(gt, claims);
  EXPECT_EQ(v.total.fp, 0u);
  EXPECT_EQ(v.total.tp, 0u);
}

TEST_F(EvaluatorTest, ByClassBucketsSumToTotal) {
  const AsGroundTruth gt = experiment().ground_truth(target());
  const auto result = experiment().run_mapit({});
  const Verification v = experiment().evaluator().verify(
      gt, baselines::claims_from_result(result));
  Metrics sum;
  for (const auto& [cls, metrics] : v.by_class) sum += metrics;
  EXPECT_EQ(sum.tp, v.total.tp);
  EXPECT_EQ(sum.fp, v.total.fp);
  EXPECT_EQ(sum.fn, v.total.fn);
}

TEST_F(EvaluatorTest, FalseNegativesRequireEligibility) {
  // Links with no endpoint in the traces are not counted missing.
  const AsGroundTruth gt = experiment().ground_truth(target());
  const Verification v = experiment().evaluator().verify(gt, {});
  for (const LinkTruth& missing : v.false_negatives) {
    const bool a_seen =
        experiment().graph().find(missing.addr_a) != nullptr;
    const bool b_seen =
        experiment().graph().find(missing.addr_b) != nullptr;
    EXPECT_TRUE(a_seen || b_seen);
  }
}

TEST(MetricsTest, PrecisionRecallEdgeCases) {
  Metrics m;
  EXPECT_EQ(m.precision(), 1.0);
  EXPECT_EQ(m.recall(), 1.0);
  m.tp = 3;
  m.fp = 1;
  m.fn = 2;
  EXPECT_NEAR(m.precision(), 0.75, 1e-12);
  EXPECT_NEAR(m.recall(), 0.6, 1e-12);
  Metrics other;
  other.tp = 1;
  m += other;
  EXPECT_EQ(m.tp, 4u);
}

}  // namespace
}  // namespace mapit::eval
