// Differential-sweep tests: JSON round-trip, drift detection, grid
// fingerprinting, and crash-resume through the state file.
#include "eval/diff_sweep.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "net/error.h"

namespace mapit::eval {
namespace {

DiffSweepReport tiny_report() {
  DiffSweepReport report;
  DiffSweepCell a;
  a.rate = 0.0;
  a.seed = 7;
  a.mapit = Metrics{48, 0, 15};
  a.simple = Metrics{45, 69, 18};
  a.convention = Metrics{18, 135, 45};
  a.converged = true;
  a.iterations = 3;
  a.inferences = 601;
  DiffSweepCell b;
  b.rate = 0.5;
  b.seed = 9;
  b.mapit = Metrics{55, 0, 5};
  b.simple = Metrics{43, 76, 17};
  b.convention = Metrics{24, 108, 36};
  b.converged = true;
  b.iterations = 2;
  b.inferences = 598;
  report.cells = {a, b};
  return report;
}

TEST(DiffSweepJson, RoundTripsExactly) {
  const DiffSweepReport report = tiny_report();
  std::istringstream in(format_diff_sweep_json(report));
  const DiffSweepReport parsed = parse_diff_sweep_json(in, "test");
  EXPECT_EQ(parsed.cells, report.cells);
}

TEST(DiffSweepJson, RejectsMalformedCellLines) {
  std::istringstream in(
      "{\n  \"cells\": [\n    {\"rate\": oops}\n  ]\n}\n");
  EXPECT_THROW(
      { (void)parse_diff_sweep_json(in, "bad.json"); }, mapit::Error);
}

TEST(DiffSweepDrift, ExactMatchIsEmpty) {
  const DiffSweepReport report = tiny_report();
  EXPECT_TRUE(diff_sweep_drift(report, report).empty());
}

TEST(DiffSweepDrift, FlagsChangedMissingAndExtraCells) {
  const DiffSweepReport baseline = tiny_report();

  DiffSweepReport changed = baseline;
  changed.cells[0].mapit.tp += 1;
  const auto drift = diff_sweep_drift(baseline, changed);
  ASSERT_EQ(drift.size(), 1u);
  EXPECT_NE(drift[0].find("rate=0"), std::string::npos);

  DiffSweepReport missing = baseline;
  missing.cells.pop_back();
  EXPECT_FALSE(diff_sweep_drift(baseline, missing).empty());
  EXPECT_FALSE(diff_sweep_drift(missing, baseline).empty());
}

TEST(DiffSweepGrid, FingerprintPinsRatesAndSeeds) {
  DiffSweepOptions a;
  a.rates = {0.0, 1.0};
  a.seeds = {7};
  DiffSweepOptions b = a;
  const std::uint64_t fp = grid_fingerprint(a);
  EXPECT_EQ(fp, grid_fingerprint(b));
  b.rates = {0.0, 0.5};
  EXPECT_NE(fp, grid_fingerprint(b));
  b = a;
  b.seeds = {9};
  EXPECT_NE(fp, grid_fingerprint(b));
}

TEST(DiffSweepGrid, RejectsEmptyAndOutOfRangeGrids) {
  DiffSweepOptions empty;
  empty.rates.clear();
  EXPECT_THROW({ (void)run_diff_sweep(empty); }, mapit::Error);
  DiffSweepOptions bad;
  bad.rates = {1.5};
  bad.seeds = {7};
  EXPECT_THROW({ (void)run_diff_sweep(bad); }, mapit::Error);
}

class DiffSweepStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    state_path_ = (std::filesystem::temp_directory_path() /
                   ("mapit_diff_sweep_state_" +
                    std::to_string(::testing::UnitTest::GetInstance()
                                       ->random_seed()) +
                    "_" + std::to_string(counter_++)))
                      .string();
    std::filesystem::remove(state_path_);
  }
  void TearDown() override { std::filesystem::remove(state_path_); }

  static int counter_;
  std::string state_path_;
};

int DiffSweepStateTest::counter_ = 0;

TEST_F(DiffSweepStateTest, ResumeReproducesFreshRun) {
  DiffSweepOptions options;
  options.rates = {0.0};
  options.seeds = {7};
  options.state_path = state_path_;
  const DiffSweepReport fresh = run_diff_sweep(options);
  ASSERT_EQ(fresh.cells.size(), 1u);
  ASSERT_TRUE(std::filesystem::exists(state_path_));

  // Second run resumes every cell from the state file (no recompute) and
  // must reproduce the exact same integers.
  std::ostringstream progress;
  options.progress = &progress;
  const DiffSweepReport resumed = run_diff_sweep(options);
  EXPECT_EQ(resumed.cells, fresh.cells);
  EXPECT_NE(progress.str().find("resumed from state"), std::string::npos);
}

TEST_F(DiffSweepStateTest, StaleGridStateIsDiscarded) {
  DiffSweepOptions options;
  options.rates = {0.0};
  options.seeds = {7};
  options.state_path = state_path_;
  (void)run_diff_sweep(options);

  // A different grid must not reuse the old state's cells.
  options.seeds = {9};
  std::ostringstream progress;
  options.progress = &progress;
  const DiffSweepReport report = run_diff_sweep(options);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.cells[0].seed, 9u);
  EXPECT_EQ(progress.str().find("resumed from state"), std::string::npos);
}

TEST_F(DiffSweepStateTest, DamagedStateFileThrows) {
  {
    std::ofstream out(state_path_);
    out << "not a sweep state file\n";
  }
  DiffSweepOptions options;
  options.rates = {0.0};
  options.seeds = {7};
  options.state_path = state_path_;
  EXPECT_THROW({ (void)run_diff_sweep(options); }, mapit::Error);
}

}  // namespace
}  // namespace mapit::eval
