// Ground-truth construction tests: exact inventories, hostname coverage,
// and staleness noise.
#include "eval/ground_truth.h"

#include <gtest/gtest.h>

#include "net/error.h"
#include "topo/generator.h"

namespace mapit::eval {
namespace {

topo::Internet make_net() {
  topo::GeneratorConfig config;
  config.seed = 31;
  config.tier1_count = 3;
  config.transit_count = 15;
  config.stub_count = 60;
  config.rne_customer_count = 8;
  return topo::Generator(config).generate();
}

TEST(GroundTruth, ExactCoversEveryLinkOfTheTarget) {
  const topo::Internet net = make_net();
  const asdata::Asn target = topo::Generator::rne_asn();
  const AsGroundTruth gt = AsGroundTruth::exact(net, target);
  EXPECT_TRUE(gt.is_exact());
  EXPECT_EQ(gt.target(), target);

  std::size_t expected = 0;
  for (const topo::TrueLink& link : net.true_links()) {
    if (link.as_a == target || link.as_b == target) ++expected;
  }
  EXPECT_EQ(gt.links().size(), expected);
  EXPECT_GT(expected, 0u);

  for (const LinkTruth& link : gt.links()) {
    EXPECT_EQ(link.recorded_remote, link.remote);  // exact truth: no noise
    EXPECT_NE(link.remote, target);
    // addr_a is always the target-side interface.
    const topo::RouterId router = net.router_of_address(link.addr_a);
    EXPECT_EQ(net.router(router).owner, target);
    // Both addresses resolve back to this link.
    ASSERT_NE(gt.link_of(link.addr_a), nullptr);
    ASSERT_NE(gt.link_of(link.addr_b), nullptr);
    EXPECT_EQ(*gt.link_of(link.addr_a), *gt.link_of(link.addr_b));
  }
}

TEST(GroundTruth, ExactInternalInterfacesBelongToTarget) {
  const topo::Internet net = make_net();
  const asdata::Asn target = topo::Generator::rne_asn();
  const AsGroundTruth gt = AsGroundTruth::exact(net, target);
  EXPECT_FALSE(gt.internal().empty());
  for (const net::Ipv4Address address : gt.internal()) {
    const topo::RouterId router = net.router_of_address(address);
    ASSERT_NE(router, topo::kNoRouter);
    EXPECT_EQ(net.router(router).owner, target);
    EXPECT_FALSE(net.link(net.link_of_address(address)).inter_as);
  }
}

TEST(GroundTruth, ApproximateDropsUncoveredInterfaces) {
  const topo::Internet net = make_net();
  const asdata::Asn target = topo::Generator::tier1_a();
  const AsGroundTruth full = AsGroundTruth::exact(net, target);
  const AsGroundTruth partial =
      AsGroundTruth::approximate(net, target, 0.5, 0.0, 7);
  EXPECT_FALSE(partial.is_exact());
  EXPECT_LT(partial.links().size(), full.links().size());
  EXPECT_GT(partial.links().size(), 0u);
  EXPECT_LT(partial.internal().size(), full.internal().size());
}

TEST(GroundTruth, ApproximateStaleTagsRecordWrongRemote) {
  const topo::Internet net = make_net();
  const asdata::Asn target = topo::Generator::tier1_a();
  const AsGroundTruth gt =
      AsGroundTruth::approximate(net, target, 1.0, 0.5, 7);
  std::size_t stale = 0;
  for (const LinkTruth& link : gt.links()) {
    if (link.recorded_remote != link.remote) {
      ++stale;
      EXPECT_NE(link.recorded_remote, target);
      EXPECT_NE(link.recorded_remote, asdata::kUnknownAsn);
    }
  }
  EXPECT_GT(stale, 0u);
  EXPECT_LT(stale, gt.links().size());
}

TEST(GroundTruth, ApproximateIsDeterministicPerSeed) {
  const topo::Internet net = make_net();
  const asdata::Asn target = topo::Generator::tier1_b();
  const AsGroundTruth a = AsGroundTruth::approximate(net, target, 0.8, 0.1, 7);
  const AsGroundTruth b = AsGroundTruth::approximate(net, target, 0.8, 0.1, 7);
  ASSERT_EQ(a.links().size(), b.links().size());
  for (std::size_t i = 0; i < a.links().size(); ++i) {
    EXPECT_EQ(a.links()[i].addr_a, b.links()[i].addr_a);
    EXPECT_EQ(a.links()[i].recorded_remote, b.links()[i].recorded_remote);
  }
  const AsGroundTruth c = AsGroundTruth::approximate(net, target, 0.8, 0.1, 8);
  EXPECT_NE(c.links().size(), 0u);
}

TEST(GroundTruth, ValidatesParameters) {
  const topo::Internet net = make_net();
  EXPECT_THROW(
      AsGroundTruth::approximate(net, topo::Generator::tier1_a(), 1.5, 0.0, 7),
      mapit::InvariantError);
  EXPECT_THROW(AsGroundTruth::approximate(net, topo::Generator::tier1_a(), 1.0,
                                          -0.1, 7),
               mapit::InvariantError);
}

}  // namespace
}  // namespace mapit::eval
