// Experiment harness tests: configuration presets, stage wiring, and
// ground-truth dispatch.
#include "eval/experiment.h"

#include <gtest/gtest.h>

namespace mapit::eval {
namespace {

TEST(ExperimentConfig, PresetsScaleSensibly) {
  const ExperimentConfig small = ExperimentConfig::small();
  const ExperimentConfig standard = ExperimentConfig::standard();
  EXPECT_LT(small.topology.stub_count, standard.topology.stub_count);
  EXPECT_LT(small.simulation.monitor_count,
            standard.simulation.monitor_count);
  EXPECT_LE(small.topology.rne_customer_count, small.topology.stub_count);
}

TEST(Experiment, StagesAreWired) {
  const auto experiment = Experiment::build(ExperimentConfig::small());
  // Topology matches the preset.
  const ExperimentConfig& config = experiment->config();
  EXPECT_EQ(experiment->internet().ases().size(),
            static_cast<std::size_t>(config.topology.tier1_count +
                                     config.topology.transit_count +
                                     config.topology.stub_count));
  // Campaign produced traces and the sanitizer accounted for all of them.
  EXPECT_GT(experiment->raw_corpus().size(), 0u);
  EXPECT_EQ(experiment->corpus().size() +
                experiment->sanitize_stats().discarded_traces,
            experiment->raw_corpus().size());
  // The graph is non-trivial and the IP2AS resolves its interfaces.
  EXPECT_GT(experiment->graph().size(), 100u);
  const auto adjacent = experiment->corpus().adjacent_addresses();
  EXPECT_GT(experiment->ip2as().coverage(adjacent), 0.9);
}

TEST(Experiment, GroundTruthDispatch) {
  const auto experiment = Experiment::build(ExperimentConfig::small());
  EXPECT_TRUE(experiment->ground_truth(topo::Generator::rne_asn()).is_exact());
  EXPECT_FALSE(
      experiment->ground_truth(topo::Generator::tier1_a()).is_exact());
  EXPECT_FALSE(
      experiment->ground_truth(topo::Generator::tier1_b()).is_exact());
}

TEST(Experiment, EvaluationTargets) {
  const auto targets = Experiment::evaluation_targets();
  EXPECT_EQ(targets[0], topo::Generator::rne_asn());
  EXPECT_EQ(targets[1], topo::Generator::tier1_a());
  EXPECT_EQ(targets[2], topo::Generator::tier1_b());
}

TEST(Experiment, ApproximateGroundTruthIsStablePerExperiment) {
  const auto experiment = Experiment::build(ExperimentConfig::small());
  const AsGroundTruth a = experiment->ground_truth(topo::Generator::tier1_a());
  const AsGroundTruth b = experiment->ground_truth(topo::Generator::tier1_a());
  EXPECT_EQ(a.links().size(), b.links().size());
  EXPECT_EQ(a.internal().size(), b.internal().size());
}

TEST(Experiment, RawCorpusRetainsDiscardedAddresses) {
  // §4.2 requires the other-side heuristic to see addresses from discarded
  // traces; the experiment must keep the raw corpus accessible.
  const auto experiment = Experiment::build(ExperimentConfig::small());
  EXPECT_GE(experiment->raw_corpus().distinct_addresses().size(),
            experiment->corpus().distinct_addresses().size());
}

}  // namespace
}  // namespace mapit::eval
