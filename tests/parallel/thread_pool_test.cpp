// ThreadPool contract tests: static partitioning (ascending, disjoint,
// exhaustive, including empty and single-element ranges), the inline
// single-worker path, exception propagation (lowest worker wins), and
// nested-use rejection.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/thread_pool.h"

namespace mapit::parallel {
namespace {

TEST(ThreadPoolPartition, CoversRangeAscendingDisjoint) {
  for (std::size_t count : {0u, 1u, 2u, 7u, 8u, 9u, 1000u}) {
    for (unsigned parts : {1u, 2u, 3u, 8u, 16u}) {
      std::size_t expected_begin = 0;
      for (unsigned part = 0; part < parts; ++part) {
        const auto [begin, end] = ThreadPool::partition(count, parts, part);
        EXPECT_EQ(begin, expected_begin)
            << "count=" << count << " parts=" << parts << " part=" << part;
        EXPECT_LE(begin, end);
        // Near-equal split: no partition is more than one element larger
        // than another.
        EXPECT_LE(end - begin, count / parts + 1);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, count);
    }
  }
}

TEST(ThreadPoolPartition, MorePartsThanElementsYieldsEmptyTails) {
  // 3 elements over 8 parts: parts 0-2 get one element each, 3-7 nothing.
  for (unsigned part = 0; part < 8; ++part) {
    const auto [begin, end] = ThreadPool::partition(3, 8, part);
    EXPECT_EQ(end - begin, part < 3 ? 1u : 0u);
  }
}

TEST(ThreadPoolTest, ResolveThreadsNeverZero) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> seen(10, 0);
  pool.for_ranges(seen.size(), [&](unsigned worker, std::size_t begin,
                                   std::size_t end) {
    EXPECT_EQ(worker, 0u);
    for (std::size_t i = begin; i < end; ++i) ++seen[i];
  });
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, EveryIndexProcessedExactlyOnce) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4u);
  constexpr std::size_t kCount = 1237;  // not a multiple of the pool size
  std::vector<std::atomic<int>> seen(kCount);
  pool.for_ranges(kCount, [&](unsigned, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++seen[i];
  });
  for (const auto& count : seen) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesCallback) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.for_ranges(0, [&](unsigned, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleElementUsesOneWorker) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.for_ranges(1, [&](unsigned worker, std::size_t begin,
                         std::size_t end) {
    EXPECT_EQ(worker, 0u);  // element 0 belongs to the leading partition
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyDispatches) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.for_ranges(100, [&](unsigned, std::size_t begin, std::size_t end) {
      total += end - begin;
    });
  }
  EXPECT_EQ(total.load(), 50u * 100u);
}

TEST(ThreadPoolTest, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.for_ranges(100,
                      [](unsigned, std::size_t begin, std::size_t) {
                        if (begin >= 25) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
  // The pool stays usable after a throwing dispatch.
  std::atomic<int> calls{0};
  pool.for_ranges(4, [&](unsigned, std::size_t, std::size_t) { ++calls; });
  EXPECT_GE(calls.load(), 1);
}

TEST(ThreadPoolTest, LowestWorkerExceptionWins) {
  // Every worker throws; ascending ranges mean worker 0's exception is the
  // one a sequential loop would have hit first.
  ThreadPool pool(4);
  try {
    pool.for_ranges(4, [](unsigned worker, std::size_t, std::size_t) {
      throw std::runtime_error("worker " + std::to_string(worker));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "worker 0");
  }
}

TEST(ThreadPoolTest, InlinePathPropagatesException) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.for_ranges(
                   5, [](unsigned, std::size_t, std::size_t) {
                     throw std::invalid_argument("inline");
                   }),
               std::invalid_argument);
}

TEST(ThreadPoolTest, RejectsNestedUse) {
  ThreadPool pool(2);
  bool inner_threw = false;
  EXPECT_THROW(
      pool.for_ranges(2,
                      [&](unsigned worker, std::size_t, std::size_t) {
                        if (worker != 0) return;
                        try {
                          pool.for_ranges(
                              2, [](unsigned, std::size_t, std::size_t) {});
                        } catch (const std::logic_error&) {
                          inner_threw = true;
                          throw;
                        }
                      }),
      std::logic_error);
  EXPECT_TRUE(inner_threw);
  // Still usable afterwards.
  std::atomic<int> calls{0};
  pool.for_ranges(2, [&](unsigned, std::size_t, std::size_t) { ++calls; });
  EXPECT_GE(calls.load(), 1);
}

TEST(ThreadPoolTest, FreeFunctionFallsBackToInline) {
  // Null pool: runs inline on the caller with the full range.
  std::vector<std::size_t> ranges;
  for_ranges(nullptr, 7, [&](unsigned worker, std::size_t begin,
                             std::size_t end) {
    EXPECT_EQ(worker, 0u);
    ranges.push_back(begin);
    ranges.push_back(end);
  });
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], 0u);
  EXPECT_EQ(ranges[1], 7u);

  // Zero count: never invoked, pool or not.
  bool called = false;
  for_ranges(nullptr, 0,
             [&](unsigned, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace mapit::parallel
