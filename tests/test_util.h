// Shared helpers for mapit tests: compact builders for corpora, RIBs and
// fully wired mini-worlds so scenario tests read like the paper's figures.
#pragma once

#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "asdata/as2org.h"
#include "asdata/ixp.h"
#include "asdata/relationships.h"
#include "baselines/claims.h"
#include "bgp/ip2as.h"
#include "bgp/rib.h"
#include "core/engine.h"
#include "graph/interface_graph.h"
#include "net/ipv4.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace mapit::testutil {

inline net::Ipv4Address addr(std::string_view text) {
  return net::Ipv4Address::parse_or_throw(text);
}

inline net::Prefix pfx(std::string_view text) {
  return net::Prefix::parse_or_throw(text);
}

/// Builds a corpus from trace lines in the trace_io text format
/// ("monitor|destination|hop hop ...").
inline trace::TraceCorpus corpus_from(
    std::initializer_list<std::string_view> lines) {
  trace::TraceCorpus corpus;
  for (std::string_view line : lines) {
    corpus.add(trace::parse_trace(line, "test trace"));
  }
  return corpus;
}

/// Builds a single-collector RIB from (prefix, origin) pairs.
inline bgp::Rib rib_from(
    std::initializer_list<std::pair<std::string_view, asdata::Asn>> entries) {
  bgp::Rib rib;
  const bgp::CollectorId collector = rib.add_collector("test");
  for (const auto& [prefix, origin] : entries) {
    rib.add_announcement(collector, pfx(prefix), origin);
  }
  return rib;
}

/// A hand-built world: corpus + IP2AS + graph, ready to run MAP-IT on.
/// Scenario tests construct these to mirror the paper's figures.
class MiniWorld {
 public:
  MiniWorld(std::initializer_list<std::pair<std::string_view, asdata::Asn>>
                announcements,
            std::initializer_list<std::string_view> trace_lines)
      : rib_(rib_from(announcements)), corpus_(corpus_from(trace_lines)) {}

  asdata::As2Org& orgs() { return orgs_; }
  asdata::AsRelationships& relationships() { return rels_; }
  asdata::IxpRegistry& ixps() { return ixps_; }
  trace::TraceCorpus& corpus() { return corpus_; }

  /// Wires IP2AS and the interface graph (call after mutating inputs).
  void freeze() {
    ip2as_ = std::make_unique<bgp::Ip2As>(rib_, net::PrefixTrie<asdata::Asn>{},
                                          &ixps_);
    const auto addresses = corpus_.distinct_addresses();
    graph_ =
        std::make_unique<graph::InterfaceGraph>(corpus_, addresses);
  }

  const graph::InterfaceGraph& graph() {
    if (!graph_) freeze();
    return *graph_;
  }

  const bgp::Ip2As& ip2as() {
    if (!ip2as_) freeze();
    return *ip2as_;
  }

  core::Result run(const core::Options& options = {}) {
    if (!graph_) freeze();
    return core::run_mapit(*graph_, *ip2as_, orgs_, rels_, options);
  }

 private:
  bgp::Rib rib_;
  asdata::As2Org orgs_;
  asdata::AsRelationships rels_;
  asdata::IxpRegistry ixps_;
  trace::TraceCorpus corpus_;
  std::unique_ptr<bgp::Ip2As> ip2as_;
  std::unique_ptr<graph::InterfaceGraph> graph_;
};

/// The confident inference on `address`/`direction`, or nullptr.
inline const core::Inference* find_inference(const core::Result& result,
                                             std::string_view address,
                                             graph::Direction direction) {
  return result.find({addr(address), direction});
}

}  // namespace mapit::testutil
