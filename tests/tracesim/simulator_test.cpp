// Traceroute simulator tests: determinism, hop/address semantics, and each
// artifact class (silence, NAT stubs, TTL-forwarding bugs, egress replies,
// load balancing / flaps).
#include "tracesim/simulator.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "route/as_routing.h"
#include "route/forwarder.h"
#include "topo/generator.h"
#include "trace/sanitize.h"

namespace mapit::tracesim {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  static topo::GeneratorConfig topo_config() {
    topo::GeneratorConfig c;
    c.seed = 11;
    c.tier1_count = 3;
    c.transit_count = 15;
    c.stub_count = 60;
    c.rne_customer_count = 8;
    c.nat_stub_prob = 0.3;          // make NAT stubs plentiful for testing
    c.buggy_router_prob = 0.05;     // same for buggy routers
    c.egress_reply_router_prob = 0.1;
    return c;
  }

  static SimulatorConfig sim_config() {
    SimulatorConfig c;
    c.seed = 23;
    c.monitor_count = 8;
    c.destinations_per_prefix = 1;
    return c;
  }

  SimulatorTest()
      : net_(topo::Generator(topo_config()).generate()),
        routing_(net_.true_relationships()),
        forwarder_(net_, routing_),
        simulator_(net_, forwarder_, sim_config()) {}

  topo::Internet net_;
  route::AsRouting routing_;
  route::Forwarder forwarder_;
  TracerouteSimulator simulator_;
};

TEST_F(SimulatorTest, MonitorPlacement) {
  ASSERT_EQ(simulator_.monitors().size(), 8u);
  std::unordered_set<asdata::Asn> hosts;
  for (const Monitor& monitor : simulator_.monitors()) {
    EXPECT_NE(monitor.source_router, topo::kNoRouter);
    EXPECT_EQ(net_.router(monitor.source_router).owner, monitor.asn);
    EXPECT_FALSE(net_.as_info(monitor.asn).nat_stub);
    hosts.insert(monitor.asn);
  }
  EXPECT_EQ(hosts.size(), 8u);  // distinct vantage ASes
  // The R&E network hosts the first monitor (§5.1's setup).
  EXPECT_EQ(simulator_.monitors().front().asn, topo::Generator::rne_asn());
}

TEST_F(SimulatorTest, ProbeIsDeterministic) {
  const Monitor& monitor = simulator_.monitors().front();
  const auto destinations = net_.probe_destinations(1, 3);
  for (std::size_t i = 0; i < destinations.size(); i += 20) {
    EXPECT_EQ(simulator_.probe(monitor, destinations[i]),
              simulator_.probe(monitor, destinations[i]));
  }
}

TEST_F(SimulatorTest, ProbeTtlsAreSequential) {
  const Monitor& monitor = simulator_.monitors().front();
  const auto destinations = net_.probe_destinations(1, 3);
  for (std::size_t i = 0; i < destinations.size(); i += 9) {
    const trace::Trace t = simulator_.probe(monitor, destinations[i]);
    for (std::size_t h = 0; h < t.hops.size(); ++h) {
      EXPECT_EQ(t.hops[h].probe_ttl, h + 1);
    }
  }
}

TEST_F(SimulatorTest, ReportedAddressesAreIngressInterfaces) {
  // Without artifacts, a responding hop reports the ingress interface of
  // the traversed router. Verify reported addresses belong to routers on
  // the true forwarding path.
  const Monitor& monitor = simulator_.monitors().front();
  const auto destinations = net_.probe_destinations(1, 3);
  int checked = 0;
  for (std::size_t i = 0; i < destinations.size() && checked < 200; ++i) {
    const trace::Trace t = simulator_.probe(monitor, destinations[i]);
    for (const trace::TraceHop& hop : t.hops) {
      if (!hop.address) continue;
      const topo::RouterId router = net_.router_of_address(*hop.address);
      if (router == topo::kNoRouter) continue;  // NAT address or dest echo
      ++checked;
    }
  }
  EXPECT_GT(checked, 50);
}

TEST_F(SimulatorTest, NatStubsAnswerWithTheirNatAddress) {
  // Find a NAT stub and probe an address inside it.
  const topo::AsInfo* nat_stub = nullptr;
  for (const topo::AsInfo& info : net_.ases()) {
    if (info.nat_stub) {
      nat_stub = &info;
      break;
    }
  }
  ASSERT_NE(nat_stub, nullptr) << "config should create NAT stubs";
  const net::Ipv4Address destination(
      nat_stub->announced.front().network().value() + 99);
  bool saw_nat_address = false;
  for (const Monitor& monitor : simulator_.monitors()) {
    const trace::Trace t = simulator_.probe(monitor, destination);
    for (const trace::TraceHop& hop : t.hops) {
      if (!hop.address) continue;
      const topo::RouterId router = net_.router_of_address(*hop.address);
      if (router != topo::kNoRouter &&
          net_.router(router).owner == nat_stub->asn) {
        FAIL() << "NAT stub leaked a real interface " << *hop.address;
      }
      if (*hop.address == *nat_stub->nat_address) saw_nat_address = true;
    }
  }
  EXPECT_TRUE(saw_nat_address);
}

TEST_F(SimulatorTest, BuggyRoutersProduceQuotedTtl0) {
  SimulatorStats stats;
  const trace::TraceCorpus corpus = simulator_.run_campaign(&stats);
  std::size_t quoted0 = 0;
  for (const trace::Trace& t : corpus.traces()) {
    for (const trace::TraceHop& hop : t.hops) {
      if (hop.address && hop.quoted_ttl && *hop.quoted_ttl == 0) ++quoted0;
    }
  }
  EXPECT_GT(quoted0, 0u) << "buggy routers should surface quoted TTL 0";
  // And sanitization removes exactly those hops.
  const auto sanitized = trace::sanitize(corpus);
  EXPECT_EQ(sanitized.stats.removed_ttl0_hops, quoted0);
}

TEST_F(SimulatorTest, CampaignHasUnresponsiveHops) {
  const trace::TraceCorpus corpus = simulator_.run_campaign(nullptr);
  std::size_t nulls = 0;
  for (const trace::Trace& t : corpus.traces()) {
    for (const trace::TraceHop& hop : t.hops) {
      if (!hop.address) ++nulls;
    }
  }
  EXPECT_GT(nulls, 0u);
}

TEST_F(SimulatorTest, CampaignProducesCyclesForSanitizerToDiscard) {
  const trace::TraceCorpus corpus = simulator_.run_campaign(nullptr);
  const auto sanitized = trace::sanitize(corpus);
  EXPECT_GT(sanitized.stats.discarded_traces, 0u);
  // The discard rate stays moderate (the paper reports 2.7%).
  EXPECT_LT(sanitized.stats.discard_fraction(), 0.15);
}

TEST_F(SimulatorTest, CampaignIsDeterministic) {
  SimulatorStats s1, s2;
  const trace::TraceCorpus c1 = simulator_.run_campaign(&s1);
  const trace::TraceCorpus c2 = simulator_.run_campaign(&s2);
  ASSERT_EQ(c1.size(), c2.size());
  EXPECT_EQ(s1.traces, s2.traces);
  EXPECT_EQ(s1.lb_traces, s2.lb_traces);
  for (std::size_t i = 0; i < c1.size(); i += 101) {
    EXPECT_EQ(c1.traces()[i], c2.traces()[i]);
  }
}

TEST_F(SimulatorTest, StatsAccounting) {
  SimulatorStats stats;
  const trace::TraceCorpus corpus = simulator_.run_campaign(&stats);
  EXPECT_EQ(stats.traces, corpus.size());
  EXPECT_GT(stats.lb_traces + stats.flapped_traces, 0u);
}

TEST_F(SimulatorTest, MaxTtlTruncatesTraces) {
  SimulatorConfig config = sim_config();
  config.max_ttl = 3;
  const TracerouteSimulator truncated(net_, forwarder_, config);
  const auto destinations = net_.probe_destinations(1, 3);
  for (std::size_t i = 0; i < destinations.size(); i += 25) {
    const trace::Trace t =
        truncated.probe(truncated.monitors().front(), destinations[i]);
    EXPECT_LE(t.hops.size(), 4u);  // 3 hops + optional destination echo
  }
}

}  // namespace
}  // namespace mapit::tracesim
