// Artifact-toggle tests: each simulator artifact class demonstrably
// changes the emitted corpus, and disabling everything yields clean
// ingress-only traces.
#include <gtest/gtest.h>

#include "route/as_routing.h"
#include "route/forwarder.h"
#include "topo/generator.h"
#include "trace/sanitize.h"
#include "tracesim/simulator.h"

namespace mapit::tracesim {
namespace {

topo::GeneratorConfig clean_topology(std::uint64_t seed) {
  topo::GeneratorConfig c;
  c.seed = seed;
  c.tier1_count = 3;
  c.transit_count = 12;
  c.stub_count = 40;
  c.rne_customer_count = 6;
  c.nat_stub_prob = 0.0;
  c.buggy_router_prob = 0.0;
  c.egress_reply_router_prob = 0.0;
  c.router_silent_prob = 0.0;
  c.silent_border_as_prob = 0.0;
  return c;
}

SimulatorConfig quiet_sim() {
  SimulatorConfig c;
  c.seed = 77;
  c.monitor_count = 6;
  c.destinations_per_prefix = 1;
  c.hop_loss_prob = 0.0;
  c.per_packet_lb_prob = 0.0;
  c.route_flap_prob = 0.0;
  c.dest_reply_prob = 0.0;
  return c;
}

TEST(ArtifactToggles, CleanWorldEmitsPureIngressTraces) {
  const topo::Internet net = topo::Generator(clean_topology(21)).generate();
  route::AsRouting routing(net.true_relationships());
  route::Forwarder forwarder(net, routing);
  const TracerouteSimulator simulator(net, forwarder, quiet_sim());
  const trace::TraceCorpus corpus = simulator.run_campaign(nullptr);
  ASSERT_GT(corpus.size(), 100u);
  for (const trace::Trace& t : corpus.traces()) {
    for (const trace::TraceHop& hop : t.hops) {
      // No silence, no quoted TTL 0, and every address is a real interface
      // reported by the router that owns it.
      ASSERT_TRUE(hop.address.has_value());
      EXPECT_NE(net.router_of_address(*hop.address), topo::kNoRouter);
      EXPECT_NE(hop.quoted_ttl.value_or(1), 0);
    }
    EXPECT_FALSE(t.has_interface_cycle());
  }
  const auto sanitized = trace::sanitize(corpus);
  EXPECT_EQ(sanitized.stats.discarded_traces, 0u);
  EXPECT_EQ(sanitized.stats.removed_ttl0_hops, 0u);
}

TEST(ArtifactToggles, EgressReplyRoutersChangeReportedAddresses) {
  topo::GeneratorConfig with_egress = clean_topology(21);
  with_egress.egress_reply_router_prob = 1.0;
  const topo::Internet baseline_net =
      topo::Generator(clean_topology(21)).generate();
  const topo::Internet egress_net = topo::Generator(with_egress).generate();
  // Same seed => same topology; only the behaviour flags differ.
  ASSERT_EQ(baseline_net.links().size(), egress_net.links().size());

  route::AsRouting routing_a(baseline_net.true_relationships());
  route::Forwarder forwarder_a(baseline_net, routing_a);
  route::AsRouting routing_b(egress_net.true_relationships());
  route::Forwarder forwarder_b(egress_net, routing_b);
  const trace::TraceCorpus clean =
      TracerouteSimulator(baseline_net, forwarder_a, quiet_sim())
          .run_campaign(nullptr);
  const trace::TraceCorpus egress =
      TracerouteSimulator(egress_net, forwarder_b, quiet_sim())
          .run_campaign(nullptr);
  ASSERT_EQ(clean.size(), egress.size());
  std::size_t differing_hops = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const auto& a = clean.traces()[i].hops;
    const auto& b = egress.traces()[i].hops;
    for (std::size_t h = 0; h < std::min(a.size(), b.size()); ++h) {
      if (a[h].address != b[h].address) ++differing_hops;
    }
  }
  EXPECT_GT(differing_hops, 10u)
      << "egress-reply routers should surface different source addresses";
}

TEST(ArtifactToggles, LossKnobControlsSilence) {
  const topo::Internet net = topo::Generator(clean_topology(22)).generate();
  route::AsRouting routing(net.true_relationships());
  route::Forwarder forwarder(net, routing);
  SimulatorConfig lossy = quiet_sim();
  lossy.hop_loss_prob = 0.5;
  const trace::TraceCorpus corpus =
      TracerouteSimulator(net, forwarder, lossy).run_campaign(nullptr);
  std::size_t total = 0, silent = 0;
  for (const trace::Trace& t : corpus.traces()) {
    for (const trace::TraceHop& hop : t.hops) {
      ++total;
      if (!hop.address) ++silent;
    }
  }
  const double fraction =
      static_cast<double>(silent) / static_cast<double>(total);
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

TEST(ArtifactToggles, FlapKnobProducesCycles) {
  const topo::Internet net = topo::Generator(clean_topology(23)).generate();
  route::AsRouting routing(net.true_relationships());
  route::Forwarder forwarder(net, routing);
  SimulatorConfig flappy = quiet_sim();
  flappy.route_flap_prob = 0.5;
  SimulatorStats stats;
  const trace::TraceCorpus corpus =
      TracerouteSimulator(net, forwarder, flappy).run_campaign(&stats);
  EXPECT_GT(stats.flapped_traces, 0u);
  EXPECT_GT(trace::sanitize(corpus).stats.discarded_traces, 0u);
}

TEST(ArtifactToggles, DestinationEchoKnob) {
  const topo::Internet net = topo::Generator(clean_topology(24)).generate();
  route::AsRouting routing(net.true_relationships());
  route::Forwarder forwarder(net, routing);
  SimulatorConfig echo = quiet_sim();
  echo.dest_reply_prob = 1.0;
  const trace::TraceCorpus corpus =
      TracerouteSimulator(net, forwarder, echo).run_campaign(nullptr);
  std::size_t echoes = 0;
  for (const trace::Trace& t : corpus.traces()) {
    if (!t.hops.empty() && t.hops.back().address == t.destination) ++echoes;
  }
  // Every complete trace ends with the destination answering.
  EXPECT_GT(echoes, corpus.size() / 2);
}

}  // namespace
}  // namespace mapit::tracesim
