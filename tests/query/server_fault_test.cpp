// Server hardening under injected faults and hostile clients: EMFILE
// bursts on accept, idle connections, oversized request lines, connection
// caps, clients that vanish mid-batch, stalled readers, and graceful drain
// on stop. The whole matrix is typed over BOTH servers — the blocking
// LineServer and the epoll AsyncServer — because the contract (DESIGN.md
// §9, §12) is one contract with two implementations. The soak test at the
// end runs all of it at once and still expects golden answers; the TSan CI
// job runs this whole binary (FAULT_MATRIX stage).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "fault/plan.h"
#include "query/async_server.h"
#include "query/server.h"
#include "store/reader.h"
#include "store/writer.h"
#include "test_util.h"

namespace mapit::query {
namespace {

using store::InferenceRecord;
using store::PrefixRecord;
using store::SnapshotData;
using store::SnapshotReader;
using testutil::addr;

SnapshotData sample_data() {
  SnapshotData data;
  data.inferences.push_back(
      InferenceRecord{addr("10.0.0.1").value(), 0, 0, 0, 0, 100, 200, 3, 4});
  data.inferences.push_back(
      InferenceRecord{addr("10.0.0.2").value(), 1, 1, 0, 0, 200, 100, 2, 3});
  data.bgp_prefixes.push_back(
      PrefixRecord{addr("10.0.0.0").value(), 100, 8, {0, 0, 0}});
  return data;
}

int connect_to(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(connect(fd, reinterpret_cast<const sockaddr*>(&address),
                    sizeof(address)),
            0)
      << std::strerror(errno);
  return fd;
}

void send_exactly(int fd, const std::string& request) {
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

std::string drain(int fd) {
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  return response;
}

/// Connects, sends `request`, half-closes, drains the response until EOF.
std::string roundtrip(std::uint16_t port, const std::string& request) {
  const int fd = connect_to(port);
  send_exactly(fd, request);
  shutdown(fd, SHUT_WR);
  const std::string response = drain(fd);
  close(fd);
  return response;
}

template <typename ServerT>
class ServerFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reader_ = std::make_unique<SnapshotReader>(SnapshotReader::from_bytes(
        store::serialize_snapshot(sample_data())));
    engine_ = std::make_unique<QueryEngine>(*reader_);
  }

  std::unique_ptr<SnapshotReader> reader_;
  std::unique_ptr<QueryEngine> engine_;
};

using ServerTypes = ::testing::Types<LineServer, AsyncServer>;

class ServerTypeNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    return std::is_same_v<T, LineServer> ? "Line" : "Async";
  }
};

TYPED_TEST_SUITE(ServerFaultTest, ServerTypes, ServerTypeNames);

TYPED_TEST(ServerFaultTest, SurvivesEmfileBurstOnAccept) {
  fault::FaultPlan plan;
  // The first four accepts fail with fd exhaustion, the fifth with a
  // connection that died in the backlog; the accept path must back off and
  // keep serving, never exit.
  plan.add(fault::Fault{.op = fault::Op::kAccept, .nth = 1, .repeat = 4,
                        .inject_errno = EMFILE});
  plan.add(fault::Fault{.op = fault::Op::kAccept, .nth = 5,
                        .inject_errno = ECONNABORTED});
  ServerOptions options;
  options.max_accept_backoff = std::chrono::milliseconds(10);
  options.io = &plan;
  TypeParam server(*this->engine_, options);
  server.start();
  const std::string response = roundtrip(server.port(), "lookup 10.0.0.1 f\n");
  EXPECT_EQ(response, this->engine_->answer("lookup 10.0.0.1 f") + "\n");
  EXPECT_GE(server.accept_retries(), 5u);
  server.stop();
}

TYPED_TEST(ServerFaultTest, EnfileThenStopDoesNotHangInBackoff) {
  fault::FaultPlan plan;
  plan.add(fault::Fault{.op = fault::Op::kAccept, .nth = 1, .repeat = 1000,
                        .inject_errno = ENFILE});
  ServerOptions options;
  options.max_accept_backoff = std::chrono::milliseconds(5000);
  options.io = &plan;
  TypeParam server(*this->engine_, options);
  server.start();
  // Let the loop reach a long backoff wait, then stop: the wait must be
  // interrupted, not waited out.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto begin = std::chrono::steady_clock::now();
  server.stop();
  EXPECT_LT(std::chrono::steady_clock::now() - begin,
            std::chrono::seconds(2));
}

TYPED_TEST(ServerFaultTest, IdleConnectionIsClosedAfterTimeout) {
  ServerOptions options;
  options.idle_timeout = std::chrono::milliseconds(100);
  TypeParam server(*this->engine_, options);
  server.start();
  const int fd = connect_to(server.port());
  // An active roundtrip first: activity must not trip the idle timer.
  send_exactly(fd, "stats\n");
  char buffer[512];
  ASSERT_GT(recv(fd, buffer, sizeof(buffer), 0), 0);
  // Now idle. The server must close us — recv unblocks with EOF.
  const auto begin = std::chrono::steady_clock::now();
  const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
  EXPECT_EQ(n, 0);
  EXPECT_LT(std::chrono::steady_clock::now() - begin,
            std::chrono::seconds(5));
  close(fd);
  server.stop();
}

TYPED_TEST(ServerFaultTest, RefusesConnectionsPastTheCap) {
  ServerOptions options;
  options.max_connections = 1;
  TypeParam server(*this->engine_, options);
  server.start();

  const int occupant = connect_to(server.port());
  send_exactly(occupant, "stats\n");
  char buffer[512];
  ASSERT_GT(recv(occupant, buffer, sizeof(buffer), 0), 0);

  // The cap is hit: the next client gets one refusal line, then EOF.
  const int refused = connect_to(server.port());
  const std::string refusal = drain(refused);
  EXPECT_EQ(refusal, "ERR server at connection capacity (try again later)\n");
  close(refused);
  EXPECT_EQ(server.refused_connections(), 1u);

  // Freeing the slot reopens the door.
  close(occupant);
  std::string accepted;
  for (int attempt = 0; attempt < 100 && accepted.empty(); ++attempt) {
    accepted = roundtrip(server.port(), "stats\n");
    if (accepted == "ERR server at connection capacity (try again later)\n") {
      accepted.clear();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_EQ(accepted, this->engine_->answer("stats") + "\n");
  server.stop();
}

TYPED_TEST(ServerFaultTest, OversizedCompleteLineGetsErrAndBatchContinues) {
  ServerOptions options;
  options.max_line_bytes = 64;
  TypeParam server(*this->engine_, options);
  server.start();
  const std::string request =
      std::string(200, 'a') + "\nlookup 10.0.0.1 f\n";
  const std::string response = roundtrip(server.port(), request);
  EXPECT_EQ(response, "ERR request line exceeds 64 bytes\n" +
                          this->engine_->answer("lookup 10.0.0.1 f") + "\n");
  server.stop();
}

TYPED_TEST(ServerFaultTest, UnterminatedGiantLineIsBoundedAndAnswered) {
  ServerOptions options;
  options.max_line_bytes = 1024;
  TypeParam server(*this->engine_, options);
  server.start();
  const int fd = connect_to(server.port());
  // Stream 1 MiB with no newline: the server must answer the ERR line
  // while the flood is still in progress (bounded buffer) and discard the
  // rest of the line.
  const std::string flood(1 << 20, 'x');
  send_exactly(fd, flood);
  send_exactly(fd, "\nstats\n");
  shutdown(fd, SHUT_WR);
  const std::string response = drain(fd);
  close(fd);
  EXPECT_EQ(response, "ERR request line exceeds 1024 bytes\n" +
                          this->engine_->answer("stats") + "\n");
  server.stop();
}

TYPED_TEST(ServerFaultTest, ClientDisconnectMidBatchDoesNotKillServer) {
  TypeParam server(*this->engine_, ServerOptions{});
  server.start();
  // A client pipelines a deep batch and vanishes without reading a byte:
  // the server's sends must fail with EPIPE/ECONNRESET (never SIGPIPE) and
  // only that connection dies.
  std::string batch;
  for (int i = 0; i < 2000; ++i) batch += "lookup 10.0.0.1 f\n";
  const int fd = connect_to(server.port());
  send_exactly(fd, batch);
  struct linger hard_reset {.l_onoff = 1, .l_linger = 0};
  setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset, sizeof(hard_reset));
  close(fd);  // RST: the server's in-flight answers hit a dead peer

  // The server survives and keeps answering fresh clients.
  const std::string response = roundtrip(server.port(), "stats\n");
  EXPECT_EQ(response, this->engine_->answer("stats") + "\n");
  server.stop();
}

TYPED_TEST(ServerFaultTest, InjectedSendResetKillsOneConnectionOnly) {
  fault::FaultPlan plan;
  plan.add(fault::Fault{.op = fault::Op::kSend, .nth = 1,
                        .inject_errno = ECONNRESET});
  ServerOptions options;
  options.io = &plan;
  TypeParam server(*this->engine_, options);
  server.start();
  // First client: its answer send is reset mid-batch; it observes EOF.
  const std::string first = roundtrip(server.port(), "stats\n");
  EXPECT_EQ(first, "");
  // Second client: the fault is spent, service continues.
  const std::string second = roundtrip(server.port(), "stats\n");
  EXPECT_EQ(second, this->engine_->answer("stats") + "\n");
  server.stop();
}

/// Value of `key=<integer>` in a HEALTH answer line, or -1 when absent.
long long health_field(const std::string& line, const std::string& key) {
  const std::string needle = " " + key + "=";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return -1;
  return std::atoll(line.c_str() + pos + needle.size());
}

// The server-level HEALTH probe: answered in-order alongside engine lines,
// reporting the served snapshot's CRC and live server counters — including
// a refusal that happened moments earlier.
TYPED_TEST(ServerFaultTest, HealthProbeReportsSnapshotCrcAndCounters) {
  ServerOptions options;
  options.max_connections = 1;
  TypeParam server(*this->engine_, options);
  server.start();

  // Occupy the single slot, then get one client refused so the probe has a
  // nonzero counter to report.
  const int occupant = connect_to(server.port());
  send_exactly(occupant, "stats\n");
  char buffer[512];
  ASSERT_GT(recv(occupant, buffer, sizeof(buffer), 0), 0);
  const int refused = connect_to(server.port());
  EXPECT_EQ(drain(refused),
            "ERR server at connection capacity (try again later)\n");
  close(refused);

  // HEALTH pipelines like any other line; the occupant still holds its
  // connection while the probe is answered, so connections=1.
  send_exactly(occupant, "HEALTH\nstats\n");
  shutdown(occupant, SHUT_WR);
  const std::string response = drain(occupant);
  close(occupant);

  const std::size_t newline = response.find('\n');
  ASSERT_NE(newline, std::string::npos) << response;
  const std::string health = response.substr(0, newline);
  EXPECT_EQ(response.substr(newline + 1),
            this->engine_->answer("stats") + "\n");

  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x",
                this->reader_->payload_crc32());
  EXPECT_EQ(health.rfind("OK crc32=" + std::string(crc_hex) + " uptime=",
                         0),
            0u)
      << health;
  EXPECT_GE(health_field(health, "uptime"), 0) << health;
  EXPECT_EQ(health_field(health, "connections"), 1) << health;
  EXPECT_EQ(health_field(health, "inferences"), 2) << health;
  EXPECT_EQ(health_field(health, "refused"), 1) << health;
  EXPECT_EQ(health_field(health, "accept_retries"), 0) << health;
  EXPECT_EQ(health_field(health, "shed"), 0) << health;
  // A fixed-engine server has no hub, so no swap ever failed.
  EXPECT_NE(health.find(" last_swap_error=none"), std::string::npos)
      << health;
  server.stop();
}

TYPED_TEST(ServerFaultTest, StopDrainsInFlightAnswersWholeLines) {
  TypeParam server(*this->engine_, ServerOptions{});
  server.start();
  std::string batch;
  std::string expected;
  for (int i = 0; i < 500; ++i) {
    batch += "lookup 10.0.0.1 f\n";
    expected += this->engine_->answer("lookup 10.0.0.1 f") + "\n";
  }
  const int fd = connect_to(server.port());
  send_exactly(fd, batch);
  // Stop while the batch may still be in flight: the drain must finish the
  // lines the server already read and send their answers before closing.
  server.stop();
  const std::string response = drain(fd);
  close(fd);
  // Never torn mid-line, never reordered: what arrives is a prefix of the
  // full expected answer stream ending on a line boundary.
  EXPECT_LE(response.size(), expected.size());
  EXPECT_EQ(response, expected.substr(0, response.size()));
  if (!response.empty()) {
    EXPECT_EQ(response.back(), '\n');
  }
}

// The stalled-reader regression (the bug this PR fixes): a client that
// pipelines a deep batch and never reads a byte used to pin a LineServer
// worker forever in a blocking send, which in turn hung stop(). Now the
// LineServer's SO_SNDTIMEO drops the connection and the AsyncServer's
// bounded drain closes it — either way stop() returns promptly.
TYPED_TEST(ServerFaultTest, StalledReaderCannotBlockStop) {
  ServerOptions options;
  options.send_timeout = std::chrono::milliseconds(200);   // LineServer path
  options.max_write_buffer = 32 * 1024;                    // AsyncServer path
  options.drain_timeout = std::chrono::milliseconds(300);  // AsyncServer path
  TypeParam server(*this->engine_, options);
  server.start();

  // A tiny receive window makes the kernel buffers fill fast, wedging the
  // server's sends while most answers are still unsent.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 4096;
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(server.port());
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(fd, reinterpret_cast<const sockaddr*>(&address),
                    sizeof(address)),
            0)
      << std::strerror(errno);

  std::string batch;
  for (int i = 0; i < 8000; ++i) batch += "lookup 10.0.0.1 f\n";
  // Send from a helper thread: once the server stops reading (wedged send
  // or write backpressure), our own send would block too. The helper
  // tolerates the server dropping us — that IS the expected outcome.
  std::thread stalled_sender([&] {
    std::size_t sent = 0;
    while (sent < batch.size()) {
      const ssize_t n = send(fd, batch.data() + sent, batch.size() - sent,
                             MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
  });
  // Let the batch land and the server wedge against the never-read socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const auto begin = std::chrono::steady_clock::now();
  server.stop();
  EXPECT_LT(std::chrono::steady_clock::now() - begin,
            std::chrono::seconds(3));
  close(fd);
  stalled_sender.join();
}

// The listen backlog is SOMAXCONN (not the old magic 64): while accepts
// are stalled by injected fd exhaustion, a burst of clients well past 64
// must all complete their handshakes immediately out of the backlog — with
// a 64-deep backlog the kernel drops the overflow SYNs and every dropped
// client stalls in a >=1s retransmit. Afterwards every one of them gets a
// real answer.
TYPED_TEST(ServerFaultTest, BacklogAbsorbsBurstWhileAcceptsAreStalled) {
  fault::FaultPlan plan;
  plan.add(fault::Fault{.op = fault::Op::kAccept, .nth = 1, .repeat = 10,
                        .inject_errno = EMFILE});
  ServerOptions options;
  options.max_accept_backoff = std::chrono::milliseconds(100);
  options.io = &plan;
  TypeParam server(*this->engine_, options);
  server.start();

  // ~430ms of stalled accepts (10 injections through the doubling backoff)
  // covers the whole burst below, which takes a few milliseconds.
  constexpr int kBurst = 150;
  std::vector<int> fds;
  fds.reserve(kBurst);
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < kBurst; ++i) fds.push_back(connect_to(server.port()));
  EXPECT_LT(std::chrono::steady_clock::now() - begin,
            std::chrono::seconds(1));

  const std::string expected = this->engine_->answer("stats") + "\n";
  for (const int fd : fds) {
    send_exactly(fd, "stats\n");
    shutdown(fd, SHUT_WR);
    EXPECT_EQ(drain(fd), expected);
    close(fd);
  }
  EXPECT_GE(server.accept_retries(), 10u);
  server.stop();
}

TYPED_TEST(ServerFaultTest, ServeForeverStopReleasesTheListenerPort) {
  auto server = std::make_unique<TypeParam>(*this->engine_, ServerOptions{});
  const std::uint16_t port = server->port();
  std::thread serving([&] { server->serve_forever(); });
  // One roundtrip proves the loop is up before we stop it.
  EXPECT_EQ(roundtrip(port, "stats\n"), this->engine_->answer("stats") + "\n");
  server->stop();
  serving.join();
  server.reset();
  // The fd must be closed by now (the old bug leaked it on this path):
  // binding the same port again succeeds only if the listener is gone.
  EXPECT_NO_THROW({
    TypeParam rebound(*this->engine_, port);
    EXPECT_EQ(rebound.port(), port);
  });
}

// Everything at once: fd exhaustion, an idle client, a line flood, a
// vanishing client — and the golden batch must still come back exact, with
// a clean TSan-checked shutdown.
TYPED_TEST(ServerFaultTest, SoakKeepsGoldenAnswersUnderChaos) {
  fault::FaultPlan plan;
  plan.add(fault::Fault{.op = fault::Op::kAccept, .nth = 2, .repeat = 3,
                        .inject_errno = EMFILE});
  plan.add(fault::Fault{.op = fault::Op::kAccept, .nth = 7,
                        .inject_errno = ECONNABORTED});
  ServerOptions options;
  options.idle_timeout = std::chrono::milliseconds(150);
  options.max_connections = 4;
  options.max_line_bytes = 2048;
  options.max_accept_backoff = std::chrono::milliseconds(10);
  options.io = &plan;
  TypeParam server(*this->engine_, options);
  server.start();

  // Chaos phase. An idle client that will be timed out...
  const int idle_fd = connect_to(server.port());
  // ...a flooder whose giant line is bounded and answered...
  const std::string flood_response =
      roundtrip(server.port(), std::string(100 * 1024, 'z') + "\nstats\n");
  EXPECT_EQ(flood_response, "ERR request line exceeds 2048 bytes\n" +
                                this->engine_->answer("stats") + "\n");
  // ...and a client that vanishes with answers in flight.
  {
    const int fd = connect_to(server.port());
    std::string batch;
    for (int i = 0; i < 500; ++i) batch += "links 100 200\n";
    send_exactly(fd, batch);
    struct linger hard_reset {.l_onoff = 1, .l_linger = 0};
    setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset, sizeof(hard_reset));
    close(fd);
  }

  // Let the vanished client's handler notice the reset and free its
  // connection slot before the golden clients compete for the cap.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Golden phase: pipelined batches from concurrent clients, answers must
  // be exact and in order despite the chaos above.
  const std::vector<std::string> queries = {
      "lookup 10.0.0.1 f", "lookup 10.0.0.2 b", "ip2as 10.0.0.7",
      "links 100 200",     "stats",
  };
  std::string request;
  std::string expected;
  for (int i = 0; i < 40; ++i) {
    for (const std::string& query : queries) {
      request += query + "\n";
      expected += this->engine_->answer(query) + "\n";
    }
  }
  std::vector<std::thread> clients;
  std::vector<std::string> responses(2);
  for (std::size_t c = 0; c < responses.size(); ++c) {
    clients.emplace_back([&, c] {
      responses[c] = roundtrip(server.port(), request);
    });
  }
  for (std::thread& client : clients) client.join();
  for (std::size_t c = 0; c < responses.size(); ++c) {
    EXPECT_EQ(responses[c], expected) << "client " << c;
  }

  // The idle client was closed by the server, not by our stop().
  char buffer[64];
  EXPECT_EQ(recv(idle_fd, buffer, sizeof(buffer), 0), 0);
  close(idle_fd);
  server.stop();
  EXPECT_GE(server.accept_retries(), 4u);
}

}  // namespace
}  // namespace mapit::query
