// QueryEngine semantics: exact lookups, flat LPM vs the PrefixTrie oracle,
// link enumeration, the final-mapping override chain, and the line
// protocol's answer strings (including every ERR path).
#include "query/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "net/prefix_trie.h"
#include "store/reader.h"
#include "store/writer.h"
#include "test_util.h"

namespace mapit::query {
namespace {

using store::InferenceRecord;
using store::LinkRecord;
using store::MappingRecord;
using store::PrefixRecord;
using store::SnapshotData;
using store::SnapshotReader;
using testutil::addr;

/// Fixture holding the reader alive for the engine's lifetime.
class QueryEngineTest : public ::testing::Test {
 protected:
  void load(const SnapshotData& data) {
    reader_ = std::make_unique<SnapshotReader>(
        SnapshotReader::from_bytes(store::serialize_snapshot(data)));
    engine_ = std::make_unique<QueryEngine>(*reader_);
  }

  SnapshotData sample() {
    SnapshotData data;
    // 10.0.0.1 has both halves; 10.0.0.2 forward only (uncertain).
    data.inferences.push_back(
        InferenceRecord{addr("10.0.0.1").value(), 0, 0, 0, 0, 100, 200, 3,
                        4});
    data.inferences.push_back(
        InferenceRecord{addr("10.0.0.1").value(), 1, 1, 0, 0, 100, 300, 2,
                        4});
    data.inferences.push_back(
        InferenceRecord{addr("10.0.0.2").value(), 0, 2,
                        store::kInferenceUncertain, 0, 300, 100, 1, 2});
    data.links.push_back(LinkRecord{addr("10.0.0.1").value(),
                                    addr("10.0.0.9").value(), 100, 200, 2, 5,
                                    8, 0, {0, 0, 0}});
    data.links.push_back(LinkRecord{addr("10.0.0.3").value(),
                                    addr("10.0.0.4").value(), 100, 200, 1, 2,
                                    4, 0, {0, 0, 0}});
    data.links.push_back(LinkRecord{addr("10.0.0.5").value(),
                                    addr("10.0.0.6").value(), 100, 300, 1, 3,
                                    4, 0, {0, 0, 0}});
    data.bgp_prefixes.push_back(
        PrefixRecord{addr("10.0.0.0").value(), 100, 8, {0, 0, 0}});
    data.bgp_prefixes.push_back(
        PrefixRecord{addr("10.0.0.0").value(), 200, 24, {0, 0, 0}});
    data.fallback_prefixes.push_back(
        PrefixRecord{addr("192.0.0.0").value(), 999, 4, {0, 0, 0}});
    data.mappings.push_back(
        MappingRecord{addr("10.0.0.1").value(), 300, 1, {0, 0, 0}});
    return data;
  }

  std::unique_ptr<SnapshotReader> reader_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(QueryEngineTest, ExactLookupHitAndMiss) {
  load(sample());
  const InferenceRecord* hit =
      engine_->lookup(addr("10.0.0.1"), graph::Direction::kForward);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->other_as, 200u);
  const InferenceRecord* back =
      engine_->lookup(addr("10.0.0.1"), graph::Direction::kBackward);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->other_as, 300u);
  // 10.0.0.2 backward has no record; neither does an absent address.
  EXPECT_EQ(engine_->lookup(addr("10.0.0.2"), graph::Direction::kBackward),
            nullptr);
  EXPECT_EQ(engine_->lookup(addr("10.0.0.99"), graph::Direction::kForward),
            nullptr);
}

TEST_F(QueryEngineTest, LookupAddressReturnsContiguousRun) {
  load(sample());
  EXPECT_EQ(engine_->lookup_address(addr("10.0.0.1")).size(), 2u);
  EXPECT_EQ(engine_->lookup_address(addr("10.0.0.2")).size(), 1u);
  EXPECT_TRUE(engine_->lookup_address(addr("10.0.0.99")).empty());
}

TEST_F(QueryEngineTest, LinksBetweenIsUnordered) {
  load(sample());
  EXPECT_EQ(engine_->links_between(100, 200).size(), 2u);
  EXPECT_EQ(engine_->links_between(200, 100).size(), 2u);
  EXPECT_EQ(engine_->links_between(100, 300).size(), 1u);
  EXPECT_TRUE(engine_->links_between(100, 999).empty());
}

TEST_F(QueryEngineTest, Ip2AsLayering) {
  load(sample());
  // BGP layer, most specific wins.
  const auto deep = engine_->ip2as(addr("10.0.0.77"));
  EXPECT_EQ(deep.asn, 200u);
  EXPECT_FALSE(deep.from_fallback);
  const auto shallow = engine_->ip2as(addr("10.9.9.9"));
  EXPECT_EQ(shallow.asn, 100u);
  // Fallback only fires when BGP misses.
  const auto fallback = engine_->ip2as(addr("200.1.2.3"));
  EXPECT_EQ(fallback.asn, 999u);
  EXPECT_TRUE(fallback.from_fallback);
  // Nothing covers 64.0.0.0/2.
  EXPECT_FALSE(engine_->ip2as(addr("64.0.0.1")).announced());
}

TEST_F(QueryEngineTest, FinalMappingOverrideChain) {
  load(sample());
  // 10.0.0.1 backward has an engine override to AS300.
  const auto overridden =
      engine_->final_mapping(addr("10.0.0.1"), graph::Direction::kBackward);
  EXPECT_EQ(overridden.first, 300u);
  EXPECT_TRUE(overridden.second);
  // Forward half has no override: base LPM answer (/24 → AS200).
  const auto base =
      engine_->final_mapping(addr("10.0.0.1"), graph::Direction::kForward);
  EXPECT_EQ(base.first, 200u);
  EXPECT_FALSE(base.second);
}

TEST_F(QueryEngineTest, AnswerProtocol) {
  load(sample());
  EXPECT_EQ(engine_->answer("lookup 10.0.0.1 f"),
            "10.0.0.1|f|100|200|direct|3/4");
  EXPECT_EQ(engine_->answer("lookup 10.0.0.1 b"),
            "10.0.0.1|b|100|300|indirect|2/4");
  EXPECT_EQ(engine_->answer("lookup 10.0.0.2 f"),
            "uncertain|10.0.0.2|f|300|100|stub|1/2");
  EXPECT_EQ(engine_->answer("lookup 10.0.0.99 f"), "MISS");
  EXPECT_EQ(engine_->answer("addr 10.0.0.1"),
            "10.0.0.1|f|100|200|direct|3/4;10.0.0.1|b|100|300|indirect|2/4");
  EXPECT_EQ(engine_->answer("addr 10.0.0.2"), "MISS");  // uncertain filtered
  EXPECT_EQ(engine_->answer("ip2as 10.0.0.77"), "10.0.0.0/24|200|bgp");
  EXPECT_EQ(engine_->answer("ip2as 200.1.2.3"), "192.0.0.0/4|999|fallback");
  EXPECT_EQ(engine_->answer("ip2as 64.0.0.1"), "unannounced");
  EXPECT_EQ(engine_->answer("ip2as 10.0.0.1 b"), "300|final");
  EXPECT_EQ(engine_->answer("ip2as 10.0.0.1 f"), "200|base");
  EXPECT_EQ(engine_->answer("links 200 100"),
            "2 10.0.0.1-10.0.0.9 10.0.0.3-10.0.0.4");
  EXPECT_EQ(engine_->answer("links 100 999"), "0");
  // Extra whitespace is tolerated.
  EXPECT_EQ(engine_->answer("  lookup   10.0.0.1   f  "),
            "10.0.0.1|f|100|200|direct|3/4");
}

TEST_F(QueryEngineTest, AnswerStats) {
  load(sample());
  const std::string stats = engine_->answer("stats");
  EXPECT_NE(stats.find("inferences=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("uncertain=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("links=3"), std::string::npos) << stats;
  EXPECT_NE(stats.find("bgp_prefixes=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("version=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("crc32="), std::string::npos) << stats;
}

TEST_F(QueryEngineTest, AnswerErrors) {
  load(sample());
  EXPECT_EQ(engine_->answer(""), "ERR empty query");
  EXPECT_EQ(engine_->answer("   "), "ERR empty query");
  EXPECT_EQ(engine_->answer("frobnicate"),
            "ERR unknown command 'frobnicate'");
  EXPECT_EQ(engine_->answer("lookup 10.0.0.1"), "ERR usage: lookup <addr> <f|b>");
  EXPECT_EQ(engine_->answer("lookup 10.0.0.1 f extra"),
            "ERR usage: lookup <addr> <f|b>");
  EXPECT_EQ(engine_->answer("lookup nonsense f"), "ERR bad address");
  EXPECT_EQ(engine_->answer("lookup 10.0.0.1 x"),
            "ERR bad direction (want f or b)");
  EXPECT_EQ(engine_->answer("addr"), "ERR usage: addr <addr>");
  EXPECT_EQ(engine_->answer("ip2as"), "ERR usage: ip2as <addr> [f|b]");
  EXPECT_EQ(engine_->answer("ip2as 1.2.3.4 q"),
            "ERR bad direction (want f or b)");
  EXPECT_EQ(engine_->answer("links 100"), "ERR usage: links <asn> <asn>");
  EXPECT_EQ(engine_->answer("links abc 100"), "ERR bad ASN");
  EXPECT_EQ(engine_->answer("links 100 -2"), "ERR bad ASN");
  EXPECT_EQ(engine_->answer("stats now"), "ERR usage: stats");
}

TEST_F(QueryEngineTest, EmptySnapshotAnswersGracefully) {
  load(SnapshotData{});
  EXPECT_EQ(engine_->answer("lookup 10.0.0.1 f"), "MISS");
  EXPECT_EQ(engine_->answer("addr 10.0.0.1"), "MISS");
  EXPECT_EQ(engine_->answer("ip2as 10.0.0.1"), "unannounced");
  EXPECT_EQ(engine_->answer("links 1 2"), "0");
}

// ---------------------------------------------------------------------------
// Flat LPM vs net::PrefixTrie, answer-for-answer on a randomized corpus.
// ---------------------------------------------------------------------------

class FlatLpmOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatLpmOracleTest, MatchesPrefixTrie) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> addr_dist;
  std::uniform_int_distribution<int> len_dist(0, 32);
  // Cluster half the prefixes under 10.0.0.0/8 so nesting and
  // miss-after-deeper-branch cases actually occur.
  std::uniform_int_distribution<std::uint32_t> cluster_dist(0x0A000000u,
                                                            0x0AFFFFFFu);

  net::PrefixTrie<asdata::Asn> trie;
  for (int i = 0; i < 400; ++i) {
    const std::uint32_t raw =
        (i % 2 == 0) ? addr_dist(rng) : cluster_dist(rng);
    const net::Prefix prefix(net::Ipv4Address(raw), len_dist(rng));
    trie.insert(prefix, static_cast<asdata::Asn>(i + 1));
  }

  // Flatten exactly the way the snapshot writer stores a trie layer.
  SnapshotData data;
  trie.for_each([&](const net::Prefix& prefix, const asdata::Asn& asn) {
    data.bgp_prefixes.push_back(store::to_record(prefix, asn));
  });
  std::sort(data.bgp_prefixes.begin(), data.bgp_prefixes.end(),
            [](const PrefixRecord& a, const PrefixRecord& b) {
              return std::make_pair(a.network, a.length) <
                     std::make_pair(b.network, b.length);
            });
  const SnapshotReader reader =
      SnapshotReader::from_bytes(store::serialize_snapshot(data));
  const QueryEngine engine(reader);

  auto check = [&](net::Ipv4Address probe) {
    const auto expected = trie.longest_match_entry(probe);
    const auto got = engine.ip2as(probe);
    if (!expected) {
      EXPECT_FALSE(got.announced()) << probe.to_string();
      return;
    }
    ASSERT_TRUE(got.announced()) << probe.to_string();
    EXPECT_EQ(got.prefix, expected->first) << probe.to_string();
    EXPECT_EQ(got.asn, *expected->second) << probe.to_string();
  };

  for (int i = 0; i < 2000; ++i) {
    check(net::Ipv4Address(i % 2 == 0 ? addr_dist(rng) : cluster_dist(rng)));
  }
  // Deterministic boundary probes.
  check(addr("0.0.0.0"));
  check(addr("255.255.255.255"));
  for (const net::Prefix& prefix : trie.prefixes()) {
    check(prefix.network());  // first covered address of every prefix
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatLpmOracleTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace mapit::query
