// AsyncServer functional tests: byte-identical line-protocol answers vs
// the LineServer, the length-prefixed binary protocol (framing, oversized
// frames, split delivery, sniffing), write backpressure end-to-end, and
// SO_REUSEPORT scale-out. Concurrency tests here are exercised by the TSan
// CI job (the whole mapit_query_test binary runs under it).
#include "query/async_server.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "query/server.h"
#include "store/reader.h"
#include "store/writer.h"
#include "test_util.h"

namespace mapit::query {
namespace {

using store::InferenceRecord;
using store::PrefixRecord;
using store::SnapshotData;
using store::SnapshotReader;
using testutil::addr;

SnapshotData sample_data() {
  SnapshotData data;
  data.inferences.push_back(
      InferenceRecord{addr("10.0.0.1").value(), 0, 0, 0, 0, 100, 200, 3, 4});
  data.inferences.push_back(
      InferenceRecord{addr("10.0.0.2").value(), 1, 1, 0, 0, 200, 100, 2, 3});
  data.bgp_prefixes.push_back(
      PrefixRecord{addr("10.0.0.0").value(), 100, 8, {0, 0, 0}});
  return data;
}

int connect_to(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(connect(fd, reinterpret_cast<const sockaddr*>(&address),
                    sizeof(address)),
            0)
      << std::strerror(errno);
  return fd;
}

void send_exactly(int fd, const std::string& request) {
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

std::string drain(int fd) {
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  return response;
}

std::string roundtrip(std::uint16_t port, const std::string& request) {
  const int fd = connect_to(port);
  send_exactly(fd, request);
  shutdown(fd, SHUT_WR);
  const std::string response = drain(fd);
  close(fd);
  return response;
}

/// Splits a drained binary-protocol byte stream back into payloads.
std::vector<std::string> parse_frames(const std::string& stream) {
  std::vector<std::string> payloads;
  std::size_t offset = 0;
  while (offset + 4 <= stream.size()) {
    std::uint32_t length = 0;
    std::memcpy(&length, stream.data() + offset, 4);  // LE host assumed
    EXPECT_LE(offset + 4 + length, stream.size()) << "torn frame";
    payloads.emplace_back(stream, offset + 4, length);
    offset += 4 + length;
  }
  EXPECT_EQ(offset, stream.size()) << "trailing bytes after last frame";
  return payloads;
}

/// The query mix every protocol test answers (exercises OK/ERR/multi-word
/// paths; no HEALTH — its uptime field is not run-deterministic).
const std::vector<std::string>& golden_queries() {
  static const std::vector<std::string> queries = {
      "lookup 10.0.0.1 f", "lookup 10.0.0.2 b", "lookup 10.9.9.9 f",
      "addr 10.0.0.1",     "ip2as 10.0.0.7",    "ip2as 99.99.99.99",
      "links 100 200",     "links 1 2",         "stats",
      "bogus query",
  };
  return queries;
}

class AsyncServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reader_ = std::make_unique<SnapshotReader>(SnapshotReader::from_bytes(
        store::serialize_snapshot(sample_data())));
    engine_ = std::make_unique<QueryEngine>(*reader_);
  }

  std::unique_ptr<SnapshotReader> reader_;
  std::unique_ptr<QueryEngine> engine_;
};

// The tentpole equivalence proof: the same pipelined line-protocol batch
// against both servers produces byte-identical response streams.
TEST_F(AsyncServerTest, LineProtocolMatchesLineServerByteForByte) {
  std::string request;
  for (int i = 0; i < 25; ++i) {
    for (const std::string& query : golden_queries()) request += query + "\n";
  }
  // CRLF and blank lines are part of the tolerated dialect — include them.
  request += "stats\r\n\r\n\nlookup 10.0.0.1 f\n";

  LineServer blocking(*engine_, ServerOptions{});
  blocking.start();
  AsyncServer async(*engine_, ServerOptions{});
  async.start();

  const std::string from_blocking = roundtrip(blocking.port(), request);
  const std::string from_async = roundtrip(async.port(), request);
  EXPECT_FALSE(from_blocking.empty());
  EXPECT_EQ(from_blocking, from_async);

  async.stop();
  blocking.stop();
}

TEST_F(AsyncServerTest, BinaryProtocolAnswersFrameForFrame) {
  AsyncServer server(*engine_, ServerOptions{});
  server.start();

  std::string request(kBinaryProtocolMagic, sizeof(kBinaryProtocolMagic));
  std::vector<std::string> expected;
  for (const std::string& query : golden_queries()) {
    append_binary_frame(request, query);
    expected.push_back(engine_->answer(query));
  }
  // A zero-length frame is a legal frame holding an empty query.
  append_binary_frame(request, "");
  expected.push_back(engine_->answer(""));

  const std::vector<std::string> payloads =
      parse_frames(roundtrip(server.port(), request));
  EXPECT_EQ(payloads, expected);
  server.stop();
}

TEST_F(AsyncServerTest, BinaryHealthFrameReportsTheSnapshot) {
  AsyncServer server(*engine_, ServerOptions{});
  server.start();
  std::string request(kBinaryProtocolMagic, sizeof(kBinaryProtocolMagic));
  append_binary_frame(request, "HEALTH");
  const std::vector<std::string> payloads =
      parse_frames(roundtrip(server.port(), request));
  ASSERT_EQ(payloads.size(), 1u);
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", reader_->payload_crc32());
  EXPECT_EQ(payloads[0].rfind("OK crc32=" + std::string(crc_hex), 0), 0u)
      << payloads[0];
  server.stop();
}

TEST_F(AsyncServerTest, OversizedBinaryFrameGetsErrAndConnectionSurvives) {
  ServerOptions options;
  options.max_line_bytes = 64;
  AsyncServer server(*engine_, options);
  server.start();

  std::string request(kBinaryProtocolMagic, sizeof(kBinaryProtocolMagic));
  append_binary_frame(request, std::string(500, 'a'));  // over the limit
  append_binary_frame(request, "stats");                // must still answer
  const std::vector<std::string> payloads =
      parse_frames(roundtrip(server.port(), request));
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "ERR request frame exceeds 64 bytes");
  EXPECT_EQ(payloads[1], engine_->answer("stats"));
  server.stop();
}

// Framing must survive arbitrary TCP segmentation: the magic, a frame
// header, and a payload each dribble in over multiple sends (TCP_NODELAY
// on the client keeps the segments separate in practice; correctness must
// not depend on it either way).
TEST_F(AsyncServerTest, BinaryFramesSplitAcrossSendsReassemble) {
  AsyncServer server(*engine_, ServerOptions{});
  server.start();

  std::string request(kBinaryProtocolMagic, sizeof(kBinaryProtocolMagic));
  append_binary_frame(request, "lookup 10.0.0.1 f");
  append_binary_frame(request, "stats");

  const int fd = connect_to(server.port());
  for (std::size_t i = 0; i < request.size(); i += 3) {
    send_exactly(fd, request.substr(i, 3));
    // A pause mid-magic and mid-frame forces the server through its
    // incomplete-prefix paths.
    if (i < 12) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  shutdown(fd, SHUT_WR);
  const std::vector<std::string> payloads = parse_frames(drain(fd));
  close(fd);
  EXPECT_EQ(payloads, std::vector<std::string>(
                          {engine_->answer("lookup 10.0.0.1 f"),
                           engine_->answer("stats")}));
  server.stop();
}

// End-to-end write backpressure: answers far exceeding max_write_buffer
// reach a slow reader completely and in order — the server pauses reading
// at the high-water mark and resumes as the client drains, instead of
// buffering without bound or dropping the connection.
TEST_F(AsyncServerTest, BackpressureDeliversEverythingToASlowReader) {
  ServerOptions options;
  options.max_write_buffer = 8 * 1024;
  AsyncServer server(*engine_, options);
  server.start();

  constexpr int kQueries = 20000;
  std::string batch;
  std::string expected;
  for (int i = 0; i < kQueries; ++i) {
    batch += "lookup 10.0.0.1 f\n";
    expected += engine_->answer("lookup 10.0.0.1 f") + "\n";
  }

  const int fd = connect_to(server.port());
  std::thread sender([&] {
    std::size_t sent = 0;
    while (sent < batch.size()) {
      const ssize_t n = send(fd, batch.data() + sent, batch.size() - sent,
                             MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    shutdown(fd, SHUT_WR);
  });

  // Read deliberately slowly at first so the write buffer actually hits
  // its high-water mark before the drain.
  std::string response;
  char buffer[512];
  for (int i = 0; i < 20; ++i) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  response += drain(fd);
  sender.join();
  close(fd);
  EXPECT_EQ(response, expected);
  server.stop();
}

TEST_F(AsyncServerTest, ReuseportSpreadsClientsAcrossTwoServers) {
  ServerOptions options;
  options.reuse_port = true;
  AsyncServer first(*engine_, options);
  options.port = first.port();
  AsyncServer second(*engine_, options);  // same port, second process stand-in
  ASSERT_EQ(first.port(), second.port());
  first.start();
  second.start();

  // The kernel picks the server per connection; every client must get the
  // right answer no matter which one it lands on.
  const std::string expected = engine_->answer("stats") + "\n";
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(roundtrip(first.port(), "stats\n"), expected);
  }
  second.stop();
  // With one listener gone the port still serves.
  EXPECT_EQ(roundtrip(first.port(), "stats\n"), expected);
  first.stop();
}

// TSan-exercised concurrency: pipelined line clients and a binary client
// hammer one event loop at once; every response stream must be exact.
TEST_F(AsyncServerTest, ConcurrentLineAndBinaryClients) {
  AsyncServer server(*engine_, ServerOptions{});
  server.start();

  std::string line_request;
  std::string line_expected;
  for (int i = 0; i < 50; ++i) {
    for (const std::string& query : golden_queries()) {
      line_request += query + "\n";
      line_expected += engine_->answer(query) + "\n";
    }
  }
  std::string binary_request(kBinaryProtocolMagic,
                             sizeof(kBinaryProtocolMagic));
  std::string binary_expected;
  for (int i = 0; i < 50; ++i) {
    for (const std::string& query : golden_queries()) {
      append_binary_frame(binary_request, query);
      append_binary_frame(binary_expected, engine_->answer(query));
    }
  }

  std::vector<std::thread> clients;
  std::vector<std::string> responses(4);
  std::vector<std::string> expectations(4);
  for (std::size_t c = 0; c < responses.size(); ++c) {
    const bool binary = c % 2 == 1;
    expectations[c] = binary ? binary_expected : line_expected;
    clients.emplace_back([&, c, binary] {
      responses[c] =
          roundtrip(server.port(), binary ? binary_request : line_request);
    });
  }
  for (std::thread& client : clients) client.join();
  for (std::size_t c = 0; c < responses.size(); ++c) {
    EXPECT_EQ(responses[c], expectations[c]) << "client " << c;
  }
  EXPECT_EQ(server.refused_connections(), 0u);
  server.stop();
}

}  // namespace
}  // namespace mapit::query
