// Live snapshot hot-swap: the SnapshotHub swaps republished snapshots in
// without dropping connections, HEALTH reports the loaded generation, and —
// the TSan-relevant part — clients hammering both protocols while the file
// is republished repeatedly always get answers that are internally
// consistent with exactly one generation per read batch.
#include "query/hub.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "query/async_server.h"
#include "query/server.h"
#include "store/reader.h"
#include "store/writer.h"
#include "test_util.h"

namespace mapit::query {
namespace {

namespace fs = std::filesystem;

using store::InferenceRecord;
using store::PrefixRecord;
using store::SnapshotData;
using store::SnapshotReader;
using testutil::addr;

/// Snapshot content parameterized by ASN so generations are telling:
/// lookup answers embed `asn`, letting a client attribute every answer to
/// the generation that produced it.
SnapshotData data_for(std::uint32_t asn) {
  SnapshotData data;
  data.inferences.push_back(InferenceRecord{addr("10.0.0.1").value(), 0, 0,
                                            0, 0, asn, asn + 1, 3, 4});
  data.inferences.push_back(InferenceRecord{addr("10.0.0.2").value(), 1, 1,
                                            0, 0, asn + 1, asn, 2, 3});
  data.bgp_prefixes.push_back(
      PrefixRecord{addr("10.0.0.0").value(), asn, 8, {0, 0, 0}});
  return data;
}

/// Publishes `data` to `path` the way `mapit ingest` does: serialize,
/// write to a temp file, atomic rename.
void publish(const std::string& path, const SnapshotData& data) {
  (void)store::write_snapshot_file(data, path);
}

class PersistentClient {
 public:
  explicit PersistentClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                        sizeof(address)),
              0)
        << std::strerror(errno);
  }
  ~PersistentClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends `request` in one segment and reads until `lines` full answer
  /// lines arrived. Returns the raw response ("" on connection loss).
  std::string batch(const std::string& request, std::size_t lines) {
    if (::send(fd_, request.data(), request.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(request.size())) {
      return {};
    }
    std::string response;
    char buffer[4096];
    while (static_cast<std::size_t>(std::count(response.begin(),
                                               response.end(), '\n')) <
           lines) {
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) return {};
      response.append(buffer, static_cast<std::size_t>(n));
    }
    return response;
  }

 private:
  int fd_ = -1;
};

class HotSwapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mapit_hot_swap_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    path_ = (dir_ / "live.snap").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// The engine-level answer a given generation's content produces.
  static std::string answer_for(std::uint32_t asn,
                                const std::string& query) {
    const SnapshotReader reader = SnapshotReader::from_bytes(
        store::serialize_snapshot(data_for(asn)));
    const QueryEngine engine(reader);
    return engine.answer(query);
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(HotSwapTest, HubSwapsGenerationsAndSurvivesBadPublishes) {
  publish(path_, data_for(100));
  SnapshotHub hub(path_);
  EXPECT_EQ(hub.current()->generation, 1u);
  EXPECT_EQ(hub.current()->engine.answer("lookup 10.0.0.1 f"),
            answer_for(100, "lookup 10.0.0.1 f"));
  EXPECT_FALSE(hub.refresh());  // unchanged file: no swap
  EXPECT_EQ(hub.swap_count(), 0u);
  EXPECT_EQ(hub.last_error(), "");  // nothing failed yet

  publish(path_, data_for(300));
  EXPECT_TRUE(hub.refresh());
  EXPECT_EQ(hub.current()->generation, 2u);
  EXPECT_EQ(hub.swap_count(), 1u);
  EXPECT_EQ(hub.current()->engine.answer("lookup 10.0.0.1 f"),
            answer_for(300, "lookup 10.0.0.1 f"));

  // An old pin stays fully answerable after the swap retired its
  // generation from the hub.
  const std::shared_ptr<const LoadedSnapshot> old_pin = hub.current();
  publish(path_, data_for(500));
  EXPECT_TRUE(hub.refresh());
  EXPECT_EQ(hub.current()->generation, 3u);
  EXPECT_EQ(old_pin->engine.answer("lookup 10.0.0.1 f"),
            answer_for(300, "lookup 10.0.0.1 f"));

  // A bad publish (truncated snapshot) must degrade to staleness: refresh
  // reports no swap, the failure is counted, generation 3 keeps serving.
  // Renamed into place like a real (buggy) publisher would — an in-place
  // overwrite would corrupt the live mmap, which is exactly what the
  // atomic-rename publish contract rules out.
  {
    const std::string tmp = path_ + ".tmp";
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << "MAPITSNP garbage";
    out.close();
    ASSERT_EQ(std::rename(tmp.c_str(), path_.c_str()), 0);
  }
  EXPECT_FALSE(hub.refresh());
  EXPECT_GE(hub.failed_refreshes(), 1u);
  EXPECT_NE(hub.last_error(), "");  // the failure message is preserved
  EXPECT_EQ(hub.current()->generation, 3u);
  EXPECT_EQ(hub.current()->engine.answer("lookup 10.0.0.1 f"),
            answer_for(500, "lookup 10.0.0.1 f"));

  // Recovery: the next good publish swaps in as generation 4. The error
  // message stays (HEALTH consumers see swaps= advance past it).
  publish(path_, data_for(700));
  EXPECT_TRUE(hub.refresh());
  EXPECT_EQ(hub.current()->generation, 4u);
  EXPECT_EQ(hub.swap_count(), 3u);
  EXPECT_NE(hub.last_error(), "");
}

TEST_F(HotSwapTest, HealthReportsVersionGenerationAndSwaps) {
  publish(path_, data_for(100));
  SnapshotHub hub(path_);
  LineServer blocking(hub, ServerOptions{});
  AsyncServer async(hub, ServerOptions{});
  blocking.start();
  async.start();

  for (const std::uint16_t port : {blocking.port(), async.port()}) {
    PersistentClient client(port);
    const std::string health = client.batch("HEALTH\n", 1);
    EXPECT_EQ(health.rfind("OK crc32=", 0), 0u) << health;
    EXPECT_NE(health.find(" version="), std::string::npos) << health;
    EXPECT_NE(health.find(" generation=1 swaps=0"), std::string::npos)
        << health;
    EXPECT_NE(health.find(" last_swap_error=none"), std::string::npos)
        << health;
  }

  publish(path_, data_for(300));
  ASSERT_TRUE(hub.refresh());
  for (const std::uint16_t port : {blocking.port(), async.port()}) {
    PersistentClient client(port);
    const std::string health = client.batch("HEALTH\n", 1);
    EXPECT_NE(health.find(" generation=2 swaps=1"), std::string::npos)
        << health;
  }

  blocking.stop();
  async.stop();
}

// The soak: clients on both protocols hold their connections open while
// the snapshot republishes repeatedly. Every two-query batch must answer
// from exactly one generation, and no connection may drop. TSan builds run
// this test — the pin handoff (shared_ptr swap under the hub mutex vs.
// concurrent reads on server threads) is exactly what it checks.
TEST_F(HotSwapTest, ClientsSurviveRepeatedRepublishWithOneGenerationPerBatch) {
  const std::vector<std::uint32_t> asns = {100, 300};
  publish(path_, data_for(asns[0]));
  SnapshotHub hub(path_);
  LineServer blocking(hub, ServerOptions{});
  AsyncServer async(hub, ServerOptions{});
  blocking.start();
  async.start();

  const std::string q1 = "lookup 10.0.0.1 f";
  const std::string q2 = "lookup 10.0.0.2 f";
  // The batch answers each generation can produce: both lines from the
  // same content. A torn pair would mean two generations served one batch.
  std::vector<std::string> consistent;
  for (const std::uint32_t asn : asns) {
    consistent.push_back(answer_for(asn, q1) + "\n" + answer_for(asn, q2) +
                         "\n");
  }

  std::atomic<bool> done{false};
  std::atomic<int> batches{0};
  std::atomic<int> violations{0};
  std::atomic<int> drops{0};
  const auto client_loop = [&](std::uint16_t port) {
    PersistentClient client(port);
    while (!done.load()) {
      const std::string response = client.batch(q1 + "\n" + q2 + "\n", 2);
      if (response.empty()) {
        ++drops;  // connection lost mid-soak: the swap broke it
        return;
      }
      ++batches;
      if (response != consistent[0] && response != consistent[1]) {
        ++violations;
      }
    }
  };
  std::vector<std::thread> clients;
  clients.emplace_back(client_loop, blocking.port());
  clients.emplace_back(client_loop, blocking.port());
  clients.emplace_back(client_loop, async.port());
  clients.emplace_back(client_loop, async.port());

  // Republish + refresh continuously; alternate content so every swap is
  // observable in the answers.
  int swaps = 0;
  for (int i = 1; i <= 20; ++i) {
    publish(path_, data_for(asns[i % 2]));
    if (hub.refresh()) ++swaps;
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }
  done.store(true);
  for (std::thread& thread : clients) thread.join();
  blocking.stop();
  async.stop();

  EXPECT_EQ(swaps, 20);
  EXPECT_EQ(hub.swap_count(), 20u);
  EXPECT_EQ(drops.load(), 0);
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(batches.load(), 20);
}

}  // namespace
}  // namespace mapit::query
