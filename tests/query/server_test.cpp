// LineServer over loopback: pipelined batches from concurrent clients must
// each get exactly the answers QueryEngine::answer produces, in order, and
// start/stop must be clean (no leaked threads or fds — TSan and ASan jobs
// run this test).
#include "query/server.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "store/reader.h"
#include "store/writer.h"
#include "test_util.h"

namespace mapit::query {
namespace {

using store::InferenceRecord;
using store::PrefixRecord;
using store::SnapshotData;
using store::SnapshotReader;
using testutil::addr;

SnapshotData sample_data() {
  SnapshotData data;
  data.inferences.push_back(
      InferenceRecord{addr("10.0.0.1").value(), 0, 0, 0, 0, 100, 200, 3, 4});
  data.inferences.push_back(
      InferenceRecord{addr("10.0.0.2").value(), 1, 1, 0, 0, 200, 100, 2, 3});
  data.bgp_prefixes.push_back(
      PrefixRecord{addr("10.0.0.0").value(), 100, 8, {0, 0, 0}});
  return data;
}

/// Connects to 127.0.0.1:port, sends `request`, half-closes, and drains the
/// response until EOF.
std::string roundtrip(std::uint16_t port, const std::string& request) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(connect(fd, reinterpret_cast<const sockaddr*>(&address),
                    sizeof(address)),
            0)
      << std::strerror(errno);
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        send(fd, request.data() + sent, request.size() - sent, 0);
    EXPECT_GT(n, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  shutdown(fd, SHUT_WR);
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  close(fd);
  return response;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reader_ = std::make_unique<SnapshotReader>(SnapshotReader::from_bytes(
        store::serialize_snapshot(sample_data())));
    engine_ = std::make_unique<QueryEngine>(*reader_);
  }

  std::unique_ptr<SnapshotReader> reader_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(ServerTest, AnswersOneClient) {
  LineServer server(*engine_, 0);
  ASSERT_NE(server.port(), 0);
  server.start();
  const std::string response =
      roundtrip(server.port(), "lookup 10.0.0.1 f\nip2as 10.0.0.5\n");
  EXPECT_EQ(response,
            engine_->answer("lookup 10.0.0.1 f") + "\n" +
                engine_->answer("ip2as 10.0.0.5") + "\n");
  server.stop();
}

TEST_F(ServerTest, ToleratesCrlfBlankAndBadLines) {
  LineServer server(*engine_, 0);
  server.start();
  const std::string response = roundtrip(
      server.port(), "lookup 10.0.0.1 f\r\n\r\n\nbogus line here\nstats\n");
  // Blank lines produce no answer; bad lines produce ERR, not a hangup.
  const std::string expected = engine_->answer("lookup 10.0.0.1 f") + "\n" +
                               engine_->answer("bogus line here") + "\n" +
                               engine_->answer("stats") + "\n";
  EXPECT_EQ(response, expected);
  server.stop();
}

TEST_F(ServerTest, FourConcurrentPipelinedClients) {
  LineServer server(*engine_, 0);
  server.start();

  // Each client pipelines a deep batch in one write; answers must come back
  // complete and in order.
  const std::vector<std::string> queries = {
      "lookup 10.0.0.1 f", "lookup 10.0.0.2 b", "lookup 10.0.0.9 f",
      "ip2as 10.0.0.7",    "links 100 200",     "stats",
  };
  constexpr int kBatches = 50;
  std::string request;
  std::string expected;
  for (int i = 0; i < kBatches; ++i) {
    for (const std::string& query : queries) {
      request += query + "\n";
      expected += engine_->answer(query) + "\n";
    }
  }

  std::vector<std::thread> clients;
  std::vector<std::string> responses(4);
  for (std::size_t c = 0; c < responses.size(); ++c) {
    clients.emplace_back([&, c] {
      responses[c] = roundtrip(server.port(), request);
    });
  }
  for (std::thread& client : clients) client.join();
  for (std::size_t c = 0; c < responses.size(); ++c) {
    EXPECT_EQ(responses[c], expected) << "client " << c;
  }
  server.stop();
}

TEST_F(ServerTest, StopIsIdempotentAndUnblocksDestructor) {
  auto server = std::make_unique<LineServer>(*engine_, 0);
  server->start();
  server->stop();
  server->stop();      // second stop is a no-op
  server.reset();      // destructor after stop must not hang or double-join
}

TEST_F(ServerTest, StopWithLiveConnection) {
  LineServer server(*engine_, 0);
  server.start();
  // Open a connection and leave it idle; stop() must shut it down rather
  // than wait forever for the client to hang up.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(server.port());
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(fd, reinterpret_cast<const sockaddr*>(&address),
                    sizeof(address)),
            0);
  // Make sure the server has accepted before stopping: one full roundtrip.
  const char* ping = "stats\n";
  ASSERT_GT(send(fd, ping, std::strlen(ping), 0), 0);
  char buffer[512];
  ASSERT_GT(recv(fd, buffer, sizeof(buffer), 0), 0);
  server.stop();
  close(fd);
}

TEST_F(ServerTest, EphemeralPortsAreIndependent) {
  LineServer first(*engine_, 0);
  LineServer second(*engine_, 0);
  EXPECT_NE(first.port(), 0);
  EXPECT_NE(second.port(), 0);
  EXPECT_NE(first.port(), second.port());
}

}  // namespace
}  // namespace mapit::query
