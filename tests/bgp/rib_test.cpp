#include "bgp/rib.h"

#include <gtest/gtest.h>

#include <sstream>

#include "net/error.h"

namespace mapit::bgp {
namespace {

net::Prefix P(const char* text) { return net::Prefix::parse_or_throw(text); }

TEST(Rib, CollectorRegistrationIsIdempotent) {
  Rib rib;
  const CollectorId a = rib.add_collector("rv-east");
  const CollectorId b = rib.add_collector("ris-eu");
  EXPECT_EQ(rib.add_collector("rv-east"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(rib.collector_names().size(), 2u);
}

TEST(Rib, DuplicateAnnouncementsAreIdempotent) {
  Rib rib;
  const CollectorId c = rib.add_collector("rc");
  rib.add_announcement(c, P("10.0.0.0/8"), 100);
  rib.add_announcement(c, P("10.0.0.0/8"), 100);
  EXPECT_EQ(rib.announcement_count(), 1u);
  EXPECT_EQ(rib.prefix_count(), 1u);
}

TEST(Rib, AnnouncementRejectsUnregisteredCollector) {
  Rib rib;
  EXPECT_THROW(rib.add_announcement(5, P("10.0.0.0/8"), 100),
               mapit::InvariantError);
}

TEST(Rib, ConsolidateSingleOrigin) {
  Rib rib;
  const CollectorId c = rib.add_collector("rc");
  rib.add_announcement(c, P("20.0.0.0/16"), 1000);
  const auto table = rib.consolidate();
  const auto* asn = table.longest_match(net::Ipv4Address(20, 0, 1, 2));
  ASSERT_NE(asn, nullptr);
  EXPECT_EQ(*asn, 1000u);
}

TEST(Rib, ConsolidateMoasByMajority) {
  Rib rib;
  const CollectorId c1 = rib.add_collector("rc1");
  const CollectorId c2 = rib.add_collector("rc2");
  const CollectorId c3 = rib.add_collector("rc3");
  rib.add_announcement(c1, P("30.0.0.0/16"), 777);
  rib.add_announcement(c2, P("30.0.0.0/16"), 777);
  rib.add_announcement(c3, P("30.0.0.0/16"), 888);
  const auto table = rib.consolidate();
  EXPECT_EQ(*table.longest_match(net::Ipv4Address(30, 0, 0, 1)), 777u);
  ASSERT_EQ(rib.moas_prefixes().size(), 1u);
  EXPECT_EQ(rib.moas_prefixes()[0], P("30.0.0.0/16"));
}

TEST(Rib, ConsolidateMoasTieBreaksToLowestAsn) {
  Rib rib;
  const CollectorId c1 = rib.add_collector("rc1");
  const CollectorId c2 = rib.add_collector("rc2");
  rib.add_announcement(c1, P("30.0.0.0/16"), 999);
  rib.add_announcement(c2, P("30.0.0.0/16"), 111);
  const auto table = rib.consolidate();
  EXPECT_EQ(*table.longest_match(net::Ipv4Address(30, 0, 0, 1)), 111u);
}

TEST(Rib, MorespecificWinsAfterConsolidation) {
  Rib rib;
  const CollectorId c = rib.add_collector("rc");
  rib.add_announcement(c, P("40.0.0.0/8"), 100);
  rib.add_announcement(c, P("40.5.0.0/16"), 200);
  const auto table = rib.consolidate();
  EXPECT_EQ(*table.longest_match(net::Ipv4Address(40, 5, 1, 1)), 200u);
  EXPECT_EQ(*table.longest_match(net::Ipv4Address(40, 6, 1, 1)), 100u);
}

TEST(Rib, TextRoundTrip) {
  Rib rib;
  const CollectorId c1 = rib.add_collector("rv");
  const CollectorId c2 = rib.add_collector("ris");
  rib.add_announcement(c1, P("10.0.0.0/8"), 100);
  rib.add_announcement(c2, P("10.0.0.0/8"), 100);
  rib.add_announcement(c2, P("20.0.0.0/16"), 200);

  std::stringstream stream;
  rib.write(stream);
  const Rib reread = Rib::read(stream);
  EXPECT_EQ(reread.announcement_count(), rib.announcement_count());
  EXPECT_EQ(reread.prefix_count(), rib.prefix_count());
  EXPECT_EQ(reread.announcements(), rib.announcements());
}

TEST(Rib, ReadRejectsMalformedLines) {
  {
    std::stringstream stream("rc|10.0.0.0/8");  // missing origin
    EXPECT_THROW(Rib::read(stream), mapit::ParseError);
  }
  {
    std::stringstream stream("rc|not-a-prefix|100");
    EXPECT_THROW(Rib::read(stream), mapit::ParseError);
  }
  {
    std::stringstream stream("rc|10.0.0.0/8|abc");
    EXPECT_THROW(Rib::read(stream), mapit::ParseError);
  }
}

// Every malformed variant, once strict (throws, names the line) and once
// lenient (skipped, counted, neighbors survive).
class RibLenientTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RibLenientTest, StrictThrowsWithLineNumber) {
  std::stringstream stream("# header\nrv|10.0.0.0/8|100\n" +
                           std::string(GetParam()) + "\nris|20.0.0.0/16|200\n");
  try {
    (void)Rib::read(stream);
    FAIL() << "expected ParseError for '" << GetParam() << "'";
  } catch (const mapit::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST_P(RibLenientTest, LenientSkipsCountsAndKeepsTheRest) {
  std::stringstream stream("# header\nrv|10.0.0.0/8|100\n" +
                           std::string(GetParam()) + "\nris|20.0.0.0/16|200\n");
  mapit::LoadReport report;
  const Rib rib = Rib::read(stream, &report);
  EXPECT_EQ(rib.announcement_count(), 2u);
  EXPECT_EQ(rib.prefix_count(), 2u);
  EXPECT_EQ(report.skipped(), 1u);
  EXPECT_EQ(report.loaded(), 2u);
  ASSERT_EQ(report.offenders().size(), 1u);
  EXPECT_EQ(report.offenders()[0].line_no, 3u);
  // "# header\n" + "rv|10.0.0.0/8|100\n" = 27 bytes before line 3.
  EXPECT_EQ(report.offenders()[0].byte_offset, 27u);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, RibLenientTest,
    ::testing::Values("rc|10.0.0.0/8",        // missing origin field
                      "rc|not-a-prefix|100",  // bad prefix
                      "rc|10.0.0.0/99|100",   // bad prefix length
                      "rc|10.0.0.0/8|abc",    // junk origin
                      "rc|10.0.0.0/8|0"       // reserved unknown-ASN origin
                      ));

TEST(Rib, LenientDoesNotLeakCollectorsFromSkippedLines) {
  // The quarantined line names a collector nobody else uses; a rejected
  // line must leave the Rib completely untouched.
  std::stringstream stream(
      "rv|10.0.0.0/8|100\nghost|not-a-prefix|100\nrv|20.0.0.0/16|200\n");
  mapit::LoadReport report;
  const Rib rib = Rib::read(stream, &report);
  EXPECT_EQ(report.skipped(), 1u);
  ASSERT_EQ(rib.collector_names().size(), 1u);
  EXPECT_EQ(rib.collector_names()[0], "rv");
}

TEST(Rib, ReadSkipsCommentsAndBlankLines) {
  std::stringstream stream("# header\n\nrc|10.0.0.0/8|100\n");
  const Rib rib = Rib::read(stream);
  EXPECT_EQ(rib.announcement_count(), 1u);
}

}  // namespace
}  // namespace mapit::bgp
