#include "bgp/ip2as.h"

#include <gtest/gtest.h>

#include <vector>

#include "asdata/ixp.h"
#include "bgp/rib.h"

namespace mapit::bgp {
namespace {

net::Prefix P(const char* text) { return net::Prefix::parse_or_throw(text); }
net::Ipv4Address A(const char* text) {
  return net::Ipv4Address::parse_or_throw(text);
}

class Ip2AsTest : public ::testing::Test {
 protected:
  Ip2AsTest() {
    const CollectorId c = rib_.add_collector("rc");
    rib_.add_announcement(c, P("20.0.0.0/16"), 1000);
    rib_.add_announcement(c, P("20.0.128.0/17"), 2000);  // more specific
    fallback_.insert(P("50.0.0.0/16"), 5000);
    ixps_.add_prefix(P("195.1.0.0/24"), 1);
    ixps_.add_ixp_asn(64500);
  }

  Rib rib_;
  net::PrefixTrie<asdata::Asn> fallback_;
  asdata::IxpRegistry ixps_;
};

TEST_F(Ip2AsTest, BgpLayerWithLongestMatch) {
  const Ip2As ip2as(rib_, std::move(fallback_), &ixps_);
  EXPECT_EQ(ip2as.origin(A("20.0.1.1")), 1000u);
  EXPECT_EQ(ip2as.origin(A("20.0.200.1")), 2000u);
  const Ip2AsResult result = ip2as.lookup(A("20.0.1.1"));
  EXPECT_EQ(result.source, Ip2AsSource::kBgp);
  ASSERT_TRUE(result.prefix.has_value());
  EXPECT_EQ(*result.prefix, P("20.0.0.0/16"));
}

TEST_F(Ip2AsTest, FallbackCoversPrefixesMissingFromBgp) {
  const Ip2As ip2as(rib_, std::move(fallback_), &ixps_);
  const Ip2AsResult result = ip2as.lookup(A("50.0.9.9"));
  EXPECT_EQ(result.asn, 5000u);
  EXPECT_EQ(result.source, Ip2AsSource::kFallback);
}

TEST_F(Ip2AsTest, BgpShadowsFallback) {
  fallback_.insert(P("20.0.0.0/16"), 9999);  // conflicting fallback entry
  const Ip2As ip2as(rib_, std::move(fallback_), &ixps_);
  EXPECT_EQ(ip2as.origin(A("20.0.1.1")), 1000u);
}

TEST_F(Ip2AsTest, SpecialPurposeBeatsEverything) {
  const CollectorId c = rib_.add_collector("rc2");
  rib_.add_announcement(c, P("0.0.0.0/0"), 42);  // covers everything
  const Ip2As ip2as(rib_, std::move(fallback_), &ixps_);
  const Ip2AsResult result = ip2as.lookup(A("192.168.1.1"));
  EXPECT_EQ(result.source, Ip2AsSource::kSpecial);
  EXPECT_EQ(result.asn, asdata::kUnknownAsn);
  EXPECT_TRUE(ip2as.is_special(A("10.1.1.1")));
}

TEST_F(Ip2AsTest, IxpAddressesMapToUnknown) {
  const Ip2As ip2as(rib_, std::move(fallback_), &ixps_);
  const Ip2AsResult result = ip2as.lookup(A("195.1.0.7"));
  EXPECT_EQ(result.source, Ip2AsSource::kIxp);
  EXPECT_EQ(result.asn, asdata::kUnknownAsn);
  EXPECT_TRUE(ip2as.is_ixp(A("195.1.0.7")));
  EXPECT_FALSE(ip2as.is_ixp(A("195.2.0.7")));
}

TEST_F(Ip2AsTest, UnannouncedAddresses) {
  const Ip2As ip2as(rib_, std::move(fallback_), &ixps_);
  const Ip2AsResult result = ip2as.lookup(A("99.99.99.99"));
  EXPECT_EQ(result.source, Ip2AsSource::kUnannounced);
  EXPECT_EQ(result.asn, asdata::kUnknownAsn);
}

TEST_F(Ip2AsTest, BgpOnlyConvenienceConstructor) {
  const Ip2As ip2as(rib_);
  EXPECT_EQ(ip2as.origin(A("20.0.1.1")), 1000u);
  EXPECT_EQ(ip2as.origin(A("50.0.9.9")), asdata::kUnknownAsn);
  EXPECT_FALSE(ip2as.is_ixp(A("195.1.0.7")));  // no IXP layer
}

TEST_F(Ip2AsTest, CoverageCountsUsableAddressesOnly) {
  const Ip2As ip2as(rib_, std::move(fallback_), &ixps_);
  const std::vector<net::Ipv4Address> addresses = {
      A("20.0.1.1"),      // covered by BGP
      A("50.0.9.9"),      // covered by fallback
      A("99.99.99.99"),   // unannounced
      A("192.168.1.1"),   // special: excluded from the denominator
  };
  EXPECT_NEAR(ip2as.coverage(addresses), 2.0 / 3.0, 1e-9);
}

TEST(Ip2AsSourceNames, AllDistinct) {
  EXPECT_STREQ(to_string(Ip2AsSource::kBgp), "bgp");
  EXPECT_STREQ(to_string(Ip2AsSource::kFallback), "fallback");
  EXPECT_STREQ(to_string(Ip2AsSource::kIxp), "ixp");
  EXPECT_STREQ(to_string(Ip2AsSource::kSpecial), "special");
  EXPECT_STREQ(to_string(Ip2AsSource::kUnannounced), "unannounced");
}

}  // namespace
}  // namespace mapit::bgp
