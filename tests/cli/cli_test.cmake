# End-to-end exercise of the mapit CLI: synthesize datasets, run MAP-IT on
# them, print stats, and check the outputs exist and parse.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${MAPIT_BIN} simulate --out ${WORK_DIR} --seed 9
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed (${rc}): ${out}${err}")
endif()

foreach(f traces.txt rib.txt relationships.txt as2org.txt ixps.txt)
  if(NOT EXISTS ${WORK_DIR}/${f})
    message(FATAL_ERROR "simulate did not write ${f}")
  endif()
endforeach()

execute_process(
  COMMAND ${MAPIT_BIN} run
    --traces ${WORK_DIR}/traces.txt
    --rib ${WORK_DIR}/rib.txt
    --relationships ${WORK_DIR}/relationships.txt
    --as2org ${WORK_DIR}/as2org.txt
    --ixps ${WORK_DIR}/ixps.txt
    --output ${WORK_DIR}/inferences.txt
    --uncertain ${WORK_DIR}/uncertain.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run failed (${rc}): ${out}${err}")
endif()
if(NOT err MATCHES "confident inferences")
  message(FATAL_ERROR "run did not report inference counts: ${err}")
endif()

file(STRINGS ${WORK_DIR}/inferences.txt inference_lines)
list(LENGTH inference_lines n)
if(n LESS 10)
  message(FATAL_ERROR "suspiciously few inferences written (${n} lines)")
endif()

execute_process(
  COMMAND ${MAPIT_BIN} stats --traces ${WORK_DIR}/traces.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "graph interfaces")
  message(FATAL_ERROR "stats failed (${rc}): ${out}${err}")
endif()

# Unknown arguments must be rejected.
execute_process(
  COMMAND ${MAPIT_BIN} run --traces ${WORK_DIR}/traces.txt
          --rib ${WORK_DIR}/rib.txt --bogus-flag
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown argument was not rejected")
endif()

message(STATUS "cli end-to-end OK (${n} inference lines)")

# Truth file + eval subcommand.
if(NOT EXISTS ${WORK_DIR}/truth.txt)
  message(FATAL_ERROR "simulate did not write truth.txt")
endif()
execute_process(
  COMMAND ${MAPIT_BIN} eval --inferences ${WORK_DIR}/inferences.txt
          --truth ${WORK_DIR}/truth.txt --target 1000
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "matched by inferences")
  message(FATAL_ERROR "eval failed (${rc}): ${out}${err}")
endif()

# Unknown subcommands must exit nonzero with usage on stderr, stdout clean.
execute_process(
  COMMAND ${MAPIT_BIN} frobnicate
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown subcommand was not rejected")
endif()
if(NOT err MATCHES "usage:" OR NOT out STREQUAL "")
  message(FATAL_ERROR "unknown subcommand: usage must go to stderr only "
          "(stdout='${out}', stderr='${err}')")
endif()

# Snapshot -> query round trip: build the artifact twice (different thread
# counts) and require byte-identical files, then check query answers match
# the run output line for line.
execute_process(
  COMMAND ${MAPIT_BIN} snapshot
    --traces ${WORK_DIR}/traces.txt
    --rib ${WORK_DIR}/rib.txt
    --relationships ${WORK_DIR}/relationships.txt
    --as2org ${WORK_DIR}/as2org.txt
    --ixps ${WORK_DIR}/ixps.txt
    --out ${WORK_DIR}/snapshot.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "crc32")
  message(FATAL_ERROR "snapshot failed (${rc}): ${out}${err}")
endif()

execute_process(
  COMMAND ${MAPIT_BIN} snapshot
    --traces ${WORK_DIR}/traces.txt
    --rib ${WORK_DIR}/rib.txt
    --relationships ${WORK_DIR}/relationships.txt
    --as2org ${WORK_DIR}/as2org.txt
    --ixps ${WORK_DIR}/ixps.txt
    --out ${WORK_DIR}/snapshot2.bin
    --threads 1
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "second snapshot failed (${rc})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/snapshot.bin ${WORK_DIR}/snapshot2.bin
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "snapshot artifacts differ across thread counts")
endif()

# Turn every inference line into a lookup query; answers must reproduce the
# run output exactly.
set(queries "")
set(expected "")
foreach(line IN LISTS inference_lines)
  if(line MATCHES "^#")
    continue()
  endif()
  string(REPLACE "|" ";" fields "${line}")
  list(GET fields 0 q_addr)
  list(GET fields 1 q_dir)
  string(APPEND queries "lookup ${q_addr} ${q_dir}\n")
  string(APPEND expected "${line}\n")
endforeach()
file(WRITE ${WORK_DIR}/queries.txt "${queries}")
execute_process(
  COMMAND ${MAPIT_BIN} query ${WORK_DIR}/snapshot.bin
  INPUT_FILE ${WORK_DIR}/queries.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "query failed (${rc}): ${err}")
endif()
if(NOT out STREQUAL expected)
  message(FATAL_ERROR "query answers diverge from run output")
endif()

# stats must answer and name the artifact version.
file(WRITE ${WORK_DIR}/stats_query.txt "stats\n")
execute_process(
  COMMAND ${MAPIT_BIN} query ${WORK_DIR}/snapshot.bin
  INPUT_FILE ${WORK_DIR}/stats_query.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "version=1" OR NOT out MATCHES "crc32=")
  message(FATAL_ERROR "query stats failed (${rc}): ${out}")
endif()

# A truncated artifact must be rejected with a diagnostic, not crash.
file(SIZE ${WORK_DIR}/snapshot.bin snap_size)
math(EXPR trunc_size "${snap_size} - 7")
find_program(DD_TOOL dd)
if(DD_TOOL)
  execute_process(
    COMMAND ${DD_TOOL} if=${WORK_DIR}/snapshot.bin
            of=${WORK_DIR}/truncated.bin bs=1 count=${trunc_size}
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  execute_process(
    COMMAND ${MAPIT_BIN} query ${WORK_DIR}/truncated.bin
    INPUT_FILE ${WORK_DIR}/stats_query.txt
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "truncated snapshot was accepted")
  endif()
  if(NOT err MATCHES "snapshot")
    message(FATAL_ERROR "truncated snapshot rejection lacks diagnostic: ${err}")
  endif()
endif()

message(STATUS "cli snapshot/query OK")

# Checkpoint/resume through the real binary: stop at every run boundary
# (one boundary per invocation via --stop-after 1, exit code 5), chain
# --resume until the run completes, and require the final inferences to be
# byte-identical to the uninterrupted run's output above.
set(ckpt_dir ${WORK_DIR}/ckpt)
set(run_flags
  --traces ${WORK_DIR}/traces.txt
  --rib ${WORK_DIR}/rib.txt
  --relationships ${WORK_DIR}/relationships.txt
  --as2org ${WORK_DIR}/as2org.txt
  --ixps ${WORK_DIR}/ixps.txt
  --output ${WORK_DIR}/resumed_inferences.txt
  --uncertain ${WORK_DIR}/resumed_uncertain.txt)

execute_process(
  COMMAND ${MAPIT_BIN} run ${run_flags}
          --checkpoint-dir ${ckpt_dir} --stop-after 1
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 5)
  message(FATAL_ERROR "--stop-after should exit 5, got ${rc}: ${err}")
endif()
if(NOT EXISTS ${ckpt_dir}/engine.ckpt)
  message(FATAL_ERROR "interrupted run left no checkpoint")
endif()
if(NOT err MATCHES "--resume")
  message(FATAL_ERROR "interrupted run did not say how to resume: ${err}")
endif()

set(resume_rc 5)
set(legs 0)
while(resume_rc EQUAL 5)
  math(EXPR legs "${legs} + 1")
  if(legs GREATER 50)
    message(FATAL_ERROR "resume chain did not terminate in 50 legs")
  endif()
  execute_process(
    COMMAND ${MAPIT_BIN} run ${run_flags}
            --resume ${ckpt_dir} --stop-after 1
    RESULT_VARIABLE resume_rc OUTPUT_QUIET ERROR_VARIABLE err)
endwhile()
if(NOT resume_rc EQUAL 0)
  message(FATAL_ERROR "resume leg failed (${resume_rc}): ${err}")
endif()
if(legs LESS 2)
  message(FATAL_ERROR "resume chain too short to prove anything (${legs})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/inferences.txt ${WORK_DIR}/resumed_inferences.txt
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "kill/resume chain diverged from uninterrupted run")
endif()
if(EXISTS ${ckpt_dir}/engine.ckpt)
  message(FATAL_ERROR "completed run did not remove its checkpoint")
endif()

# A resume whose inputs changed must be rejected with exit code 4.
execute_process(
  COMMAND ${MAPIT_BIN} run ${run_flags}
          --checkpoint-dir ${ckpt_dir} --stop-after 1
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 5)
  message(FATAL_ERROR "checkpoint seeding for mismatch test failed (${rc})")
endif()
file(READ ${WORK_DIR}/traces.txt trace_text)
file(WRITE ${WORK_DIR}/traces_edited.txt "${trace_text}\n")
execute_process(
  COMMAND ${MAPIT_BIN} run
    --traces ${WORK_DIR}/traces_edited.txt
    --rib ${WORK_DIR}/rib.txt
    --relationships ${WORK_DIR}/relationships.txt
    --as2org ${WORK_DIR}/as2org.txt
    --ixps ${WORK_DIR}/ixps.txt
    --output ${WORK_DIR}/mismatch.txt
    --resume ${ckpt_dir}
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 4)
  message(FATAL_ERROR "fingerprint mismatch should exit 4, got ${rc}: ${err}")
endif()
if(NOT err MATCHES "corpus")
  message(FATAL_ERROR "mismatch diagnostic does not name the corpus: ${err}")
endif()

# Contradictory checkpoint flags are a usage error (exit 2).
execute_process(
  COMMAND ${MAPIT_BIN} run ${run_flags}
          --checkpoint-dir ${ckpt_dir} --resume ${ckpt_dir}
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "conflicting checkpoint flags should exit 2, got ${rc}")
endif()
# ...and budget flags without a checkpoint directory are too.
execute_process(
  COMMAND ${MAPIT_BIN} run ${run_flags} --deadline 10
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "--deadline without checkpointing should exit 2, "
          "got ${rc}")
endif()

message(STATUS "cli checkpoint/resume OK (${legs} resume legs)")
