# End-to-end exercise of the mapit CLI: synthesize datasets, run MAP-IT on
# them, print stats, and check the outputs exist and parse.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${MAPIT_BIN} simulate --out ${WORK_DIR} --seed 9
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed (${rc}): ${out}${err}")
endif()

foreach(f traces.txt rib.txt relationships.txt as2org.txt ixps.txt)
  if(NOT EXISTS ${WORK_DIR}/${f})
    message(FATAL_ERROR "simulate did not write ${f}")
  endif()
endforeach()

execute_process(
  COMMAND ${MAPIT_BIN} run
    --traces ${WORK_DIR}/traces.txt
    --rib ${WORK_DIR}/rib.txt
    --relationships ${WORK_DIR}/relationships.txt
    --as2org ${WORK_DIR}/as2org.txt
    --ixps ${WORK_DIR}/ixps.txt
    --output ${WORK_DIR}/inferences.txt
    --uncertain ${WORK_DIR}/uncertain.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run failed (${rc}): ${out}${err}")
endif()
if(NOT err MATCHES "confident inferences")
  message(FATAL_ERROR "run did not report inference counts: ${err}")
endif()

file(STRINGS ${WORK_DIR}/inferences.txt inference_lines)
list(LENGTH inference_lines n)
if(n LESS 10)
  message(FATAL_ERROR "suspiciously few inferences written (${n} lines)")
endif()

execute_process(
  COMMAND ${MAPIT_BIN} stats --traces ${WORK_DIR}/traces.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "graph interfaces")
  message(FATAL_ERROR "stats failed (${rc}): ${out}${err}")
endif()

# Unknown arguments must be rejected.
execute_process(
  COMMAND ${MAPIT_BIN} run --traces ${WORK_DIR}/traces.txt
          --rib ${WORK_DIR}/rib.txt --bogus-flag
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown argument was not rejected")
endif()

message(STATUS "cli end-to-end OK (${n} inference lines)")

# Truth file + eval subcommand.
if(NOT EXISTS ${WORK_DIR}/truth.txt)
  message(FATAL_ERROR "simulate did not write truth.txt")
endif()
execute_process(
  COMMAND ${MAPIT_BIN} eval --inferences ${WORK_DIR}/inferences.txt
          --truth ${WORK_DIR}/truth.txt --target 1000
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out MATCHES "matched by inferences")
  message(FATAL_ERROR "eval failed (${rc}): ${out}${err}")
endif()
