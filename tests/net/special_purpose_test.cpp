#include "net/special_purpose.h"

#include <gtest/gtest.h>

#include <string>

#include "net/ipv4.h"

namespace mapit::net {
namespace {

Ipv4Address A(const char* text) { return Ipv4Address::parse_or_throw(text); }

TEST(SpecialPurpose, PrivateBlocks) {
  EXPECT_TRUE(is_special_purpose(A("10.0.0.1")));
  EXPECT_TRUE(is_special_purpose(A("10.255.255.255")));
  EXPECT_TRUE(is_special_purpose(A("172.16.0.1")));
  EXPECT_TRUE(is_special_purpose(A("172.31.255.255")));
  EXPECT_TRUE(is_special_purpose(A("192.168.0.1")));
}

TEST(SpecialPurpose, SharedAddressSpace) {
  // RFC 6598 CGN space, explicitly excluded by the paper's footnote 2.
  EXPECT_TRUE(is_special_purpose(A("100.64.0.0")));
  EXPECT_TRUE(is_special_purpose(A("100.127.255.255")));
  EXPECT_FALSE(is_special_purpose(A("100.63.255.255")));
  EXPECT_FALSE(is_special_purpose(A("100.128.0.0")));
}

TEST(SpecialPurpose, LoopbackLinkLocalDocs) {
  EXPECT_TRUE(is_special_purpose(A("127.0.0.1")));
  EXPECT_TRUE(is_special_purpose(A("169.254.1.1")));
  EXPECT_TRUE(is_special_purpose(A("192.0.2.1")));
  EXPECT_TRUE(is_special_purpose(A("198.51.100.7")));
  EXPECT_TRUE(is_special_purpose(A("203.0.113.200")));
  EXPECT_TRUE(is_special_purpose(A("198.18.5.1")));
  EXPECT_TRUE(is_special_purpose(A("198.19.255.255")));
}

TEST(SpecialPurpose, MulticastAndReserved) {
  EXPECT_TRUE(is_special_purpose(A("224.0.0.1")));
  EXPECT_TRUE(is_special_purpose(A("239.255.255.255")));
  EXPECT_TRUE(is_special_purpose(A("240.0.0.1")));
  EXPECT_TRUE(is_special_purpose(A("255.255.255.255")));
  EXPECT_TRUE(is_special_purpose(A("0.1.2.3")));
}

TEST(SpecialPurpose, PublicAddressesAreNotSpecial) {
  EXPECT_FALSE(is_special_purpose(A("8.8.8.8")));
  EXPECT_FALSE(is_special_purpose(A("198.71.46.180")));
  EXPECT_FALSE(is_special_purpose(A("109.105.98.10")));
  EXPECT_FALSE(is_special_purpose(A("4.68.110.186")));
  EXPECT_FALSE(is_special_purpose(A("9.255.255.255")));   // below 10/8
  EXPECT_FALSE(is_special_purpose(A("11.0.0.0")));        // above 10/8
  EXPECT_FALSE(is_special_purpose(A("172.32.0.0")));      // above 172.16/12
  EXPECT_FALSE(is_special_purpose(A("192.169.0.0")));     // above 192.168/16
  EXPECT_FALSE(is_special_purpose(A("223.255.255.255"))); // below multicast
}

TEST(SpecialPurpose, LookupReportsBlock) {
  const auto& registry = SpecialPurposeRegistry::instance();
  const auto* entry = registry.lookup(A("192.168.5.5"));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->prefix.to_string(), "192.168.0.0/16");
  EXPECT_EQ(std::string(entry->name), "private-use");
  EXPECT_EQ(registry.lookup(A("8.8.8.8")), nullptr);
}

TEST(SpecialPurpose, RegistryHasAllEntries) {
  EXPECT_EQ(SpecialPurposeRegistry::instance().entries().size(), 16u);
}

}  // namespace
}  // namespace mapit::net
