#include "net/load_report.h"

#include <gtest/gtest.h>

#include <string>

namespace mapit {
namespace {

TEST(LoadReport, EmptyReportHasEmptySummary) {
  LoadReport report;
  EXPECT_EQ(report.skipped(), 0u);
  EXPECT_EQ(report.loaded(), 0u);
  EXPECT_TRUE(report.offenders().empty());
  EXPECT_EQ(report.summary("traces"), "");
}

TEST(LoadReport, RecordsOffendersInOrder) {
  LoadReport report;
  report.record(3, 42, "bad monitor");
  report.record(7, 190, "bad destination");
  report.add_loaded(5);
  ASSERT_EQ(report.offenders().size(), 2u);
  EXPECT_EQ(report.offenders()[0].line_no, 3u);
  EXPECT_EQ(report.offenders()[0].byte_offset, 42u);
  EXPECT_EQ(report.offenders()[0].error, "bad monitor");
  EXPECT_EQ(report.offenders()[1].line_no, 7u);
  EXPECT_EQ(report.offenders()[1].byte_offset, 190u);
  EXPECT_EQ(report.summary("traces"),
            "traces: skipped 2 of 7 lines as malformed\n"
            "  line 3 (byte 42): bad monitor\n"
            "  line 7 (byte 190): bad destination\n");
}

TEST(LoadReport, DetailCapsAtKMaxDetailedButKeepsCounting) {
  LoadReport report;
  for (std::size_t i = 1; i <= LoadReport::kMaxDetailed + 5; ++i) {
    report.record(i, i * 10, "err " + std::to_string(i));
  }
  EXPECT_EQ(report.skipped(), LoadReport::kMaxDetailed + 5);
  EXPECT_EQ(report.offenders().size(), LoadReport::kMaxDetailed);
  const std::string summary = report.summary("rib");
  EXPECT_NE(summary.find("... and 5 more"), std::string::npos);
  // Only the first kMaxDetailed get lines.
  EXPECT_NE(summary.find("line 1 (byte 10): err 1"), std::string::npos);
  EXPECT_EQ(summary.find("line 11:"), std::string::npos);
}

}  // namespace
}  // namespace mapit
