#include "net/point_to_point.h"

#include <gtest/gtest.h>

#include "net/ipv4.h"

namespace mapit::net {
namespace {

Ipv4Address A(const char* text) { return Ipv4Address::parse_or_throw(text); }

TEST(PointToPoint, Slash31OtherSideFlipsLowBit) {
  EXPECT_EQ(slash31_other_side(A("109.105.98.10")), A("109.105.98.11"));
  EXPECT_EQ(slash31_other_side(A("109.105.98.11")), A("109.105.98.10"));
  EXPECT_EQ(slash31_other_side(A("198.71.46.180")), A("198.71.46.181"));
  EXPECT_EQ(slash31_other_side(A("0.0.0.0")), A("0.0.0.1"));
}

TEST(PointToPoint, Slash31IsInvolution) {
  for (std::uint32_t v : {0u, 1u, 2u, 3u, 0xC6472EB4u, 0xFFFFFFFFu}) {
    const Ipv4Address a(v);
    EXPECT_EQ(slash31_other_side(slash31_other_side(a)), a);
  }
}

TEST(PointToPoint, Slash30HostDetection) {
  // In each /30, low bits 01 and 10 are the two host addresses.
  EXPECT_FALSE(is_slash30_host(A("10.0.0.0")));
  EXPECT_TRUE(is_slash30_host(A("10.0.0.1")));
  EXPECT_TRUE(is_slash30_host(A("10.0.0.2")));
  EXPECT_FALSE(is_slash30_host(A("10.0.0.3")));
  EXPECT_FALSE(is_slash30_host(A("10.0.0.4")));
  EXPECT_TRUE(is_slash30_host(A("10.0.0.5")));
}

TEST(PointToPoint, Slash30OtherSidePairsHosts) {
  ASSERT_TRUE(slash30_other_side(A("10.0.0.1")).has_value());
  EXPECT_EQ(*slash30_other_side(A("10.0.0.1")), A("10.0.0.2"));
  EXPECT_EQ(*slash30_other_side(A("10.0.0.2")), A("10.0.0.1"));
  EXPECT_EQ(*slash30_other_side(A("10.0.0.5")), A("10.0.0.6"));
  EXPECT_FALSE(slash30_other_side(A("10.0.0.0")).has_value());
  EXPECT_FALSE(slash30_other_side(A("10.0.0.3")).has_value());
}

TEST(PointToPoint, Slash30IsInvolutionOnHosts) {
  for (std::uint32_t base = 0; base < 64; base += 4) {
    for (std::uint32_t off : {1u, 2u}) {
      const Ipv4Address a(0x0B000000u + base + off);
      const auto other = slash30_other_side(a);
      ASSERT_TRUE(other.has_value());
      ASSERT_TRUE(slash30_other_side(*other).has_value());
      EXPECT_EQ(*slash30_other_side(*other), a);
    }
  }
}

TEST(PointToPoint, Blocks) {
  EXPECT_EQ(slash30_block(A("10.0.0.6")).to_string(), "10.0.0.4/30");
  EXPECT_EQ(slash31_block(A("10.0.0.7")).to_string(), "10.0.0.6/31");
}

}  // namespace
}  // namespace mapit::net
