#include "net/ipv4.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <unordered_set>

#include "net/error.h"

namespace mapit::net {
namespace {

TEST(Ipv4Address, DefaultIsZero) {
  EXPECT_EQ(Ipv4Address().value(), 0u);
  EXPECT_EQ(Ipv4Address().to_string(), "0.0.0.0");
}

TEST(Ipv4Address, OctetConstruction) {
  const Ipv4Address a(198, 71, 46, 180);
  EXPECT_EQ(a.value(), 0xC6472EB4u);
  EXPECT_EQ(a.octet(0), 198);
  EXPECT_EQ(a.octet(1), 71);
  EXPECT_EQ(a.octet(2), 46);
  EXPECT_EQ(a.octet(3), 180);
}

TEST(Ipv4Address, ParseValid) {
  const auto a = Ipv4Address::parse("109.105.98.10");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "109.105.98.10");
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.256"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Address::parse(" 1.2.3.4"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Address::parse("1..3.4"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.0004"));
  EXPECT_FALSE(Ipv4Address::parse("-1.2.3.4"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4/8"));
}

TEST(Ipv4Address, ParseOrThrowReportsInput) {
  try {
    (void)Ipv4Address::parse_or_throw("not-an-address");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("not-an-address"), std::string::npos);
  }
}

TEST(Ipv4Address, OrderingFollowsNumericValue) {
  EXPECT_LT(Ipv4Address(1, 2, 3, 4), Ipv4Address(1, 2, 3, 5));
  EXPECT_LT(Ipv4Address(9, 255, 255, 255), Ipv4Address(10, 0, 0, 0));
  EXPECT_EQ(Ipv4Address(1, 2, 3, 4), Ipv4Address(0x01020304u));
}

TEST(Ipv4Address, HashSpreadsSequentialAddresses) {
  std::unordered_set<std::size_t> buckets;
  const std::hash<Ipv4Address> hasher;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    buckets.insert(hasher(Ipv4Address(0x0A000000u + i)) % 1024);
  }
  // A weak avalanche bound: sequential inputs should hit many buckets.
  EXPECT_GT(buckets.size(), 550u);
}

class Ipv4RoundTripTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Ipv4RoundTripTest, FormatThenParseIsIdentity) {
  const Ipv4Address original(GetParam());
  const auto reparsed = Ipv4Address::parse(original.to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, original);
}

INSTANTIATE_TEST_SUITE_P(
    Corners, Ipv4RoundTripTest,
    ::testing::Values(0u, 1u, 0xFFu, 0x100u, 0x01020304u, 0x7F000001u,
                      0x80000000u, 0xC0A80101u, 0xC6472EB4u, 0xFFFFFFFEu,
                      0xFFFFFFFFu));

// Pseudo-random sweep: xorshift over a fixed seed keeps it deterministic.
std::vector<std::uint32_t> random_addresses() {
  std::vector<std::uint32_t> out;
  std::uint32_t x = 0x12345678u;
  for (int i = 0; i < 64; ++i) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    out.push_back(x);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Random, Ipv4RoundTripTest,
                         ::testing::ValuesIn(random_addresses()));

}  // namespace
}  // namespace mapit::net
