#include "net/prefix.h"

#include <gtest/gtest.h>

#include "net/error.h"
#include "net/ipv4.h"

namespace mapit::net {
namespace {

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p(Ipv4Address(192, 168, 1, 200), 24);
  EXPECT_EQ(p.network(), Ipv4Address(192, 168, 1, 0));
  EXPECT_EQ(p.length(), 24);
}

TEST(Prefix, MaskAndRange) {
  const Prefix p = Prefix::parse_or_throw("10.20.0.0/16");
  EXPECT_EQ(p.mask(), 0xFFFF0000u);
  EXPECT_EQ(p.first(), Ipv4Address(10, 20, 0, 0));
  EXPECT_EQ(p.last(), Ipv4Address(10, 20, 255, 255));
  EXPECT_EQ(p.size(), 65536u);
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const Prefix all = Prefix::parse_or_throw("0.0.0.0/0");
  EXPECT_EQ(all.mask(), 0u);
  EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
  EXPECT_TRUE(all.contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(all.contains(Ipv4Address(0u)));
}

TEST(Prefix, Slash32IsASingleAddress) {
  const Prefix host = Prefix::parse_or_throw("4.69.201.118/32");
  EXPECT_EQ(host.size(), 1u);
  EXPECT_TRUE(host.contains(Ipv4Address(4, 69, 201, 118)));
  EXPECT_FALSE(host.contains(Ipv4Address(4, 69, 201, 119)));
}

TEST(Prefix, ContainsAddress) {
  const Prefix p = Prefix::parse_or_throw("198.71.0.0/16");
  EXPECT_TRUE(p.contains(Ipv4Address(198, 71, 46, 180)));
  EXPECT_FALSE(p.contains(Ipv4Address(198, 72, 0, 0)));
  EXPECT_FALSE(p.contains(Ipv4Address(197, 71, 0, 0)));
}

TEST(Prefix, ContainsPrefix) {
  const Prefix outer = Prefix::parse_or_throw("10.0.0.0/8");
  const Prefix inner = Prefix::parse_or_throw("10.5.0.0/16");
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0"));        // no length
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33"));     // out of range
  EXPECT_FALSE(Prefix::parse("10.0.0.0/"));       // empty length
  EXPECT_FALSE(Prefix::parse("10.0.0.0/1x"));     // non-digit
  EXPECT_FALSE(Prefix::parse("10.0.0/8"));        // bad address
  EXPECT_FALSE(Prefix::parse("10.0.0.0/024"));    // too many digits
  EXPECT_FALSE(Prefix::parse(""));
}

TEST(Prefix, ParseToleratesHostBits) {
  const auto p = Prefix::parse("10.1.2.3/8");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.0.0.0/8");
}

TEST(Prefix, ConstructorRejectsBadLength) {
  EXPECT_THROW(Prefix(Ipv4Address(1u), 33), InvariantError);
  EXPECT_THROW(Prefix(Ipv4Address(1u), -1), InvariantError);
}

TEST(Prefix, RoundTripAllLengths) {
  for (int length = 0; length <= 32; ++length) {
    const Prefix p(Ipv4Address(0xAC100000u), length);
    const auto reparsed = Prefix::parse(p.to_string());
    ASSERT_TRUE(reparsed.has_value()) << p.to_string();
    EXPECT_EQ(*reparsed, p);
  }
}

TEST(Prefix, OrderingIsDeterministic) {
  const Prefix a = Prefix::parse_or_throw("10.0.0.0/8");
  const Prefix b = Prefix::parse_or_throw("10.0.0.0/16");
  const Prefix c = Prefix::parse_or_throw("11.0.0.0/8");
  EXPECT_LT(a, b);  // same network, shorter first
  EXPECT_LT(b, c);
}

}  // namespace
}  // namespace mapit::net
