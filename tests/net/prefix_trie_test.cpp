#include "net/prefix_trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <random>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix.h"

namespace mapit::net {
namespace {

Prefix P(const char* text) { return Prefix::parse_or_throw(text); }
Ipv4Address A(const char* text) { return Ipv4Address::parse_or_throw(text); }

TEST(PrefixTrie, EmptyTrieMatchesNothing) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.longest_match(A("1.2.3.4")), nullptr);
  EXPECT_EQ(trie.find(P("0.0.0.0/0")), nullptr);
}

TEST(PrefixTrie, ExactInsertAndFind) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  trie.insert(P("10.0.0.0/16"), 2);
  ASSERT_NE(trie.find(P("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(P("10.0.0.0/8")), 1);
  EXPECT_EQ(*trie.find(P("10.0.0.0/16")), 2);
  EXPECT_EQ(trie.find(P("10.0.0.0/12")), nullptr);
  EXPECT_EQ(trie.size(), 2u);
}

TEST(PrefixTrie, LongestMatchPrefersMostSpecific) {
  PrefixTrie<int> trie;
  trie.insert(P("0.0.0.0/0"), 0);
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.20.0.0/16"), 16);
  trie.insert(P("10.20.30.0/24"), 24);
  EXPECT_EQ(*trie.longest_match(A("10.20.30.40")), 24);
  EXPECT_EQ(*trie.longest_match(A("10.20.99.1")), 16);
  EXPECT_EQ(*trie.longest_match(A("10.99.0.1")), 8);
  EXPECT_EQ(*trie.longest_match(A("11.0.0.1")), 0);
}

TEST(PrefixTrie, LongestMatchEntryReportsPrefix) {
  PrefixTrie<int> trie;
  trie.insert(P("10.20.0.0/16"), 16);
  const auto hit = trie.longest_match_entry(A("10.20.30.40"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, P("10.20.0.0/16"));
  EXPECT_EQ(*hit->second, 16);
  EXPECT_FALSE(trie.longest_match_entry(A("11.0.0.1")).has_value());
}

TEST(PrefixTrie, InsertOverwrites) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  trie.insert(P("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.find(P("10.0.0.0/8")), 2);
}

TEST(PrefixTrie, InsertIfAbsentKeepsFirst) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert_if_absent(P("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert_if_absent(P("10.0.0.0/8"), 2));
  EXPECT_EQ(*trie.find(P("10.0.0.0/8")), 1);
}

TEST(PrefixTrie, Slash32Entries) {
  PrefixTrie<int> trie;
  trie.insert(P("1.2.3.4/32"), 7);
  EXPECT_EQ(*trie.longest_match(A("1.2.3.4")), 7);
  EXPECT_EQ(trie.longest_match(A("1.2.3.5")), nullptr);
}

TEST(PrefixTrie, ForEachVisitsLexicographically) {
  PrefixTrie<int> trie;
  trie.insert(P("128.0.0.0/8"), 1);
  trie.insert(P("1.0.0.0/8"), 2);
  trie.insert(P("1.0.0.0/16"), 3);
  trie.insert(P("0.0.0.0/0"), 4);
  const std::vector<Prefix> prefixes = trie.prefixes();
  ASSERT_EQ(prefixes.size(), 4u);
  EXPECT_EQ(prefixes[0], P("0.0.0.0/0"));
  EXPECT_EQ(prefixes[1], P("1.0.0.0/8"));
  EXPECT_EQ(prefixes[2], P("1.0.0.0/16"));
  EXPECT_EQ(prefixes[3], P("128.0.0.0/8"));
}

TEST(PrefixTrie, DefaultRouteCatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(P("0.0.0.0/0"), 42);
  EXPECT_EQ(*trie.longest_match(A("0.0.0.0")), 42);
  EXPECT_EQ(*trie.longest_match(A("255.255.255.255")), 42);
  EXPECT_EQ(*trie.longest_match(A("128.0.0.1")), 42);
  const auto entry = trie.longest_match_entry(A("9.9.9.9"));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->first, P("0.0.0.0/0"));
}

TEST(PrefixTrie, HostRouteBeatsEveryCoveringPrefix) {
  PrefixTrie<int> trie;
  trie.insert(P("0.0.0.0/0"), 0);
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.1.2.3/32"), 32);
  EXPECT_EQ(*trie.longest_match(A("10.1.2.3")), 32);
  EXPECT_EQ(*trie.longest_match(A("10.1.2.2")), 8);
  EXPECT_EQ(*trie.longest_match(A("10.1.2.4")), 8);
}

TEST(PrefixTrie, OverlappingNestedPrefixes) {
  // A full nesting chain: every probe must land on the deepest prefix that
  // still contains it, not the deepest prefix in the trie.
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.0.0.0/12"), 12);
  trie.insert(P("10.0.0.0/16"), 16);
  trie.insert(P("10.0.0.0/24"), 24);
  trie.insert(P("10.0.0.0/28"), 28);
  EXPECT_EQ(*trie.longest_match(A("10.0.0.7")), 28);
  EXPECT_EQ(*trie.longest_match(A("10.0.0.99")), 24);   // outside /28
  EXPECT_EQ(*trie.longest_match(A("10.0.99.1")), 16);   // outside /24
  EXPECT_EQ(*trie.longest_match(A("10.8.0.1")), 12);    // outside /16
  EXPECT_EQ(*trie.longest_match(A("10.99.0.1")), 8);    // outside /12
  EXPECT_EQ(trie.longest_match(A("11.0.0.1")), nullptr);
}

TEST(PrefixTrie, MissAfterDeeperBranchBacktracks) {
  // The probe's path descends past 10.0.0.0/8 toward the /24 branch but
  // diverges before any deeper stored prefix: the match must backtrack to
  // the last stored ancestor rather than report the dead-end branch.
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 8);
  trie.insert(P("10.0.1.0/24"), 24);
  // Shares the /8 and walks toward /24 but flips the last bit of octet 3.
  EXPECT_EQ(*trie.longest_match(A("10.0.0.200")), 8);
  // No stored ancestor at all: a sibling of the /8.
  EXPECT_EQ(trie.longest_match(A("11.0.1.1")), nullptr);
  // Deep branch exists but probe diverges in octet 2.
  EXPECT_EQ(*trie.longest_match(A("10.1.1.1")), 8);
}

// ---------------------------------------------------------------------------
// Property sweep: the trie must agree with a linear-scan oracle on random
// prefix sets and random probes.
// ---------------------------------------------------------------------------

class PrefixTrieOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixTrieOracleTest, AgreesWithLinearScan) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> addr_dist;
  std::uniform_int_distribution<int> len_dist(0, 32);

  PrefixTrie<std::uint32_t> trie;
  std::map<Prefix, std::uint32_t> oracle;
  for (int i = 0; i < 300; ++i) {
    const Prefix prefix(Ipv4Address(addr_dist(rng)), len_dist(rng));
    const std::uint32_t value = static_cast<std::uint32_t>(i);
    trie.insert(prefix, value);
    oracle[prefix] = value;
  }
  ASSERT_EQ(trie.size(), oracle.size());

  for (int i = 0; i < 1000; ++i) {
    const Ipv4Address probe(addr_dist(rng));
    // Oracle: most specific containing prefix, last writer wins per prefix.
    std::optional<std::pair<int, std::uint32_t>> best;
    for (const auto& [prefix, value] : oracle) {
      if (prefix.contains(probe) &&
          (!best || prefix.length() > best->first)) {
        best = {prefix.length(), value};
      }
    }
    const std::uint32_t* got = trie.longest_match(probe);
    if (!best) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, best->second);
    }
  }

  // Exact finds agree everywhere.
  for (const auto& [prefix, value] : oracle) {
    const std::uint32_t* got = trie.find(prefix);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixTrieOracleTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace mapit::net
