// MDP1 transport unit tests: frame (de)serialization round-trips, the
// incremental FrameReader (chunking invariance, corruption rejection),
// the self-contained SHA-256/HMAC against published test vectors, the
// watermark table's never-regress contract, and a live TransportServer
// driven by a hand-rolled client through every handshake outcome —
// success, wrong HMAC, wrong base fingerprint, plaintext refusal,
// duplicate batches, and sequence gaps.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "ingest/transport.h"
#include "net/error.h"

namespace mapit {
namespace {

using namespace std::chrono_literals;
using ingest::Frame;
using ingest::FrameReader;
using ingest::FrameType;
using ingest::TransportError;
using ingest::TransportErrorCode;

std::string hex(const std::array<std::uint8_t, 32>& digest) {
  std::string out;
  for (const std::uint8_t byte : digest) {
    static const char* kDigits = "0123456789abcdef";
    out += kDigits[byte >> 4];
    out += kDigits[byte & 0xF];
  }
  return out;
}

TEST(TransportCrypto, Sha256KnownVectors) {
  EXPECT_EQ(hex(ingest::sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex(ingest::sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex(ingest::sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // One block-boundary case: 64 'a's forces the two-block tail path.
  EXPECT_EQ(hex(ingest::sha256(std::string(64, 'a'))),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(TransportCrypto, HmacSha256Rfc4231Vectors) {
  // RFC 4231 test case 1.
  EXPECT_EQ(hex(ingest::hmac_sha256(std::string(20, '\x0b'), "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2: a key shorter than the block size.
  EXPECT_EQ(hex(ingest::hmac_sha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // Test case 6: a key longer than the block size (forces the key hash).
  EXPECT_EQ(
      hex(ingest::hmac_sha256(
          std::string(131, '\xaa'),
          "Test Using Larger Than Block-Size Key - Hash Key First")),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(TransportCrypto, HelloMacBindsEveryHandshakeField) {
  std::array<std::uint8_t, ingest::kTransportNonceSize> nonce{};
  for (std::size_t i = 0; i < nonce.size(); ++i) {
    nonce[i] = static_cast<std::uint8_t>(i);
  }
  const auto mac = ingest::compute_hello_mac("secret", nonce, 42, "mon-1");
  EXPECT_EQ(mac, ingest::compute_hello_mac("secret", nonce, 42, "mon-1"));
  EXPECT_NE(mac, ingest::compute_hello_mac("secret2", nonce, 42, "mon-1"));
  EXPECT_NE(mac, ingest::compute_hello_mac("secret", nonce, 43, "mon-1"));
  EXPECT_NE(mac, ingest::compute_hello_mac("secret", nonce, 42, "mon-2"));
  auto other_nonce = nonce;
  other_nonce[0] ^= 1;
  EXPECT_NE(mac, ingest::compute_hello_mac("secret", other_nonce, 42,
                                           "mon-1"));
}

TEST(TransportFrames, TypedRoundTripsThroughReader) {
  ingest::ChallengeFrame challenge;
  challenge.base_fingerprint = 0xdeadbeefcafef00dULL;
  for (std::size_t i = 0; i < challenge.nonce.size(); ++i) {
    challenge.nonce[i] = static_cast<std::uint8_t>(0xA0 + i);
  }
  ingest::HelloFrame hello;
  hello.base_fingerprint = challenge.base_fingerprint;
  hello.session = "mon-east-1";
  hello.mac = ingest::compute_hello_mac("s", challenge.nonce,
                                        hello.base_fingerprint,
                                        hello.session);
  ingest::HelloAckFrame hello_ack{.last_seq = 7, .last_offset = 4096};
  ingest::BatchFrame batch;
  batch.seq = 8;
  batch.end_offset = 5000;
  batch.lines = {"0|10.2.0.2|10.1.0.1@1 10.2.0.1@2", "", "# comment"};
  ingest::AckFrame ack{.seq = 8, .end_offset = 5000};
  ingest::ErrorFrame error{.code = TransportErrorCode::kOverloaded,
                           .message = "busy"};

  const std::string stream =
      ingest::serialize_challenge(challenge) + ingest::serialize_hello(hello) +
      ingest::serialize_hello_ack(hello_ack) + ingest::serialize_batch(batch) +
      ingest::serialize_ack(ack) + ingest::serialize_error(error) +
      ingest::serialize_frame(FrameType::kHeartbeat, "");

  // Whole-buffer and byte-at-a-time feeds must decode identically.
  for (const std::size_t chunk : {stream.size(), std::size_t{1}}) {
    FrameReader reader;
    std::vector<Frame> frames;
    for (std::size_t i = 0; i < stream.size(); i += chunk) {
      reader.append(std::string_view(stream).substr(i, chunk));
      Frame frame;
      while (reader.next(frame)) frames.push_back(frame);
    }
    ASSERT_EQ(frames.size(), 7u) << "chunk=" << chunk;
    EXPECT_EQ(reader.buffered(), 0u);

    const auto parsed_challenge = ingest::parse_challenge(frames[0].payload);
    EXPECT_EQ(parsed_challenge.version, ingest::kTransportVersion);
    EXPECT_EQ(parsed_challenge.base_fingerprint, challenge.base_fingerprint);
    EXPECT_EQ(parsed_challenge.nonce, challenge.nonce);
    const auto parsed_hello = ingest::parse_hello(frames[1].payload);
    EXPECT_EQ(parsed_hello.session, hello.session);
    EXPECT_EQ(parsed_hello.mac, hello.mac);
    const auto parsed_hello_ack = ingest::parse_hello_ack(frames[2].payload);
    EXPECT_EQ(parsed_hello_ack.last_seq, 7u);
    EXPECT_EQ(parsed_hello_ack.last_offset, 4096u);
    const auto parsed_batch = ingest::parse_batch(frames[3].payload);
    EXPECT_EQ(parsed_batch.seq, 8u);
    EXPECT_EQ(parsed_batch.lines, batch.lines);
    const auto parsed_ack = ingest::parse_ack(frames[4].payload);
    EXPECT_EQ(parsed_ack.seq, 8u);
    const auto parsed_error = ingest::parse_error(frames[5].payload);
    EXPECT_EQ(parsed_error.code, TransportErrorCode::kOverloaded);
    EXPECT_EQ(parsed_error.message, "busy");
    EXPECT_EQ(frames[6].type, FrameType::kHeartbeat);
  }
}

TEST(TransportFrames, ReaderRejectsCorruption) {
  const std::string good =
      ingest::serialize_ack(ingest::AckFrame{.seq = 1, .end_offset = 2});
  Frame frame;

  {  // Flipped payload byte: CRC mismatch.
    std::string bad = good;
    bad[ingest::kTransportFrameSize] ^= 0x1;
    FrameReader reader;
    reader.append(bad);
    EXPECT_THROW((void)reader.next(frame), TransportError);
  }
  {  // Oversized size field.
    std::string bad = good;
    bad[3] = '\x7f';
    FrameReader reader;
    reader.append(bad);
    EXPECT_THROW((void)reader.next(frame), TransportError);
  }
  {  // Nonzero reserved byte.
    std::string bad = good;
    bad[10] = '\x1';
    FrameReader reader;
    reader.append(bad);
    EXPECT_THROW((void)reader.next(frame), TransportError);
  }
  {  // Unknown frame type.
    std::string bad = good;
    bad[8] = '\x9';
    FrameReader reader;
    reader.append(bad);
    EXPECT_THROW((void)reader.next(frame), TransportError);
  }
  {  // A partial frame is "no frame yet", never an error.
    FrameReader reader;
    reader.append(std::string_view(good).substr(0, good.size() - 1));
    EXPECT_FALSE(reader.next(frame));
    EXPECT_GT(reader.buffered(), 0u);
    reader.append(std::string_view(good).substr(good.size() - 1));
    EXPECT_TRUE(reader.next(frame));
    EXPECT_EQ(frame.type, FrameType::kAck);
  }
}

TEST(TransportFrames, PayloadParsersRejectMalformedPayloads) {
  EXPECT_THROW((void)ingest::parse_ack("short"), TransportError);
  EXPECT_THROW((void)ingest::parse_ack(std::string(16, '\0') + "trailing"),
               TransportError);
  EXPECT_THROW((void)ingest::parse_challenge(""), TransportError);
  EXPECT_THROW((void)ingest::parse_hello(std::string(14, '\0')),
               TransportError);
  // A BATCH whose count field promises more lines than the payload holds.
  std::string truncated;
  truncated.append(16, '\0');                  // seq + end_offset
  truncated.append("\xff\xff\xff\xff", 4);     // count = 2^32 - 1
  EXPECT_THROW((void)ingest::parse_batch(truncated), TransportError);
}

TEST(TransportWatermarks, NeverRegressAndTrackLastAck) {
  ingest::WatermarkTable table;
  EXPECT_FALSE(table.get("a").has_value());
  EXPECT_FALSE(table.last_ack().has_value());
  table.set("a", 1, 100);
  table.set("b", 5, 900);
  table.note_ack("b");
  ASSERT_TRUE(table.get("a").has_value());
  EXPECT_EQ(table.get("a")->seq, 1u);
  EXPECT_EQ(table.get("a")->offset, 100u);
  EXPECT_EQ(table.size(), 2u);
  const auto last = table.last_ack();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->first, "b");
  EXPECT_EQ(last->second.seq, 5u);
  table.set("a", 2, 150);
  EXPECT_EQ(table.get("a")->seq, 2u);
  // Watermarks never move backwards — a regression is a caller bug.
  EXPECT_THROW(table.set("a", 1, 150), InvariantError);
  EXPECT_THROW(table.set("a", 2, 100), InvariantError);
}

// ---- live server ---------------------------------------------------------

/// Minimal blocking client used to drive TransportServer directly.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    struct ::timeval timeout{};
    timeout.tv_usec = 100000;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                       sizeof(timeout));
    struct ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<struct ::sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_raw(std::string_view bytes) {
    EXPECT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  void send_magic() {
    send_raw(std::string_view(ingest::kTransportMagic,
                              sizeof(ingest::kTransportMagic)));
  }

  /// Reads until one complete frame is available (5s budget).
  std::optional<Frame> read_frame() {
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    Frame frame;
    while (std::chrono::steady_clock::now() < deadline) {
      if (reader_.next(frame)) return frame;
      char buffer[4096];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n > 0) {
        reader_.append(std::string_view(buffer,
                                        static_cast<std::size_t>(n)));
      } else if (n == 0) {
        return std::nullopt;  // peer closed
      }
    }
    return std::nullopt;
  }

  /// Reads raw bytes until EOF (for the plaintext refusal line).
  std::string read_until_eof() {
    std::string out;
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (std::chrono::steady_clock::now() < deadline) {
      char buffer[4096];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n > 0) {
        out.append(buffer, static_cast<std::size_t>(n));
      } else if (n == 0) {
        break;
      }
    }
    return out;
  }

  /// Full successful handshake; returns the server's CHALLENGE.
  ingest::ChallengeFrame handshake(const std::string& secret,
                                   const std::string& session) {
    send_magic();
    const auto frame = read_frame();
    EXPECT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, FrameType::kChallenge);
    const auto challenge = ingest::parse_challenge(frame->payload);
    ingest::HelloFrame hello;
    hello.base_fingerprint = challenge.base_fingerprint;
    hello.session = session;
    hello.mac = ingest::compute_hello_mac(secret, challenge.nonce,
                                          challenge.base_fingerprint,
                                          session);
    send_raw(ingest::serialize_hello(hello));
    const auto ack = read_frame();
    EXPECT_TRUE(ack.has_value());
    EXPECT_EQ(ack->type, FrameType::kHelloAck);
    return challenge;
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

class TransportServerTest : public ::testing::Test {
 protected:
  TransportServerTest() {
    meta_.config_hash = 11;
    meta_.corpus_fingerprint = 22;
    meta_.rib_fingerprint = 33;
    meta_.datasets_fingerprint = 44;
    options_.port = 0;
    options_.secret = "open sesame";
    options_.meta = meta_;
    options_.heartbeat_seconds = 0;  // deterministic send sequences
    options_.deadline_seconds = 0;
  }

  /// Polls drain() until at least one batch arrives (5s budget).
  std::vector<ingest::ReceivedBatch> drain_one(
      ingest::TransportServer& server) {
    std::vector<ingest::ReceivedBatch> out;
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (out.empty() && std::chrono::steady_clock::now() < deadline) {
      server.drain(out);
      if (out.empty()) std::this_thread::sleep_for(2ms);
    }
    return out;
  }

  core::CheckpointMeta meta_;
  ingest::TransportServerOptions options_;
};

TEST_F(TransportServerTest, HandshakeBatchAckDuplicateAndGap) {
  ingest::WatermarkTable watermarks;
  ingest::TransportServer server(options_, watermarks);
  TestClient client(server.port());

  const auto challenge = client.handshake("open sesame", "mon-1");
  EXPECT_EQ(challenge.base_fingerprint,
            ingest::combined_fingerprint(meta_));

  ingest::BatchFrame batch;
  batch.seq = 1;
  batch.end_offset = 120;
  batch.lines = {"0|10.2.0.2|10.1.0.1@1 10.2.0.1@2"};
  client.send_raw(ingest::serialize_batch(batch));
  const auto received = drain_one(server);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].session, "mon-1");
  EXPECT_EQ(received[0].seq, 1u);
  EXPECT_EQ(received[0].end_offset, 120u);
  EXPECT_EQ(received[0].lines, batch.lines);
  EXPECT_EQ(server.sessions(), 1u);

  // The ingest loop's contract: journal + fsync, then watermark, then ACK.
  watermarks.set("mon-1", 1, 120);
  server.ack(received[0].connection_id, 1, 120);
  const auto ack = client.read_frame();
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, FrameType::kAck);
  EXPECT_EQ(ingest::parse_ack(ack->payload).seq, 1u);

  // A duplicate at-or-below the watermark is re-ACKed, never enqueued.
  client.send_raw(ingest::serialize_batch(batch));
  const auto re_ack = client.read_frame();
  ASSERT_TRUE(re_ack.has_value());
  ASSERT_EQ(re_ack->type, FrameType::kAck);
  EXPECT_EQ(ingest::parse_ack(re_ack->payload).seq, 1u);
  EXPECT_EQ(ingest::parse_ack(re_ack->payload).end_offset, 120u);
  EXPECT_EQ(server.duplicates(), 1u);
  EXPECT_EQ(server.batches(), 1u);

  // A sequence gap is connection-fatal: typed ERROR, then close.
  batch.seq = 5;
  client.send_raw(ingest::serialize_batch(batch));
  const auto error = client.read_frame();
  ASSERT_TRUE(error.has_value());
  ASSERT_EQ(error->type, FrameType::kError);
  EXPECT_EQ(ingest::parse_error(error->payload).code,
            TransportErrorCode::kBadSequence);
  EXPECT_FALSE(client.read_frame().has_value());  // EOF
}

TEST_F(TransportServerTest, WrongHmacRejectedWithAuthError) {
  ingest::WatermarkTable watermarks;
  ingest::TransportServer server(options_, watermarks);
  TestClient client(server.port());
  client.send_magic();
  const auto frame = client.read_frame();
  ASSERT_TRUE(frame.has_value());
  const auto challenge = ingest::parse_challenge(frame->payload);

  ingest::HelloFrame hello;
  hello.base_fingerprint = challenge.base_fingerprint;
  hello.session = "mon-1";
  hello.mac = ingest::compute_hello_mac("wrong secret", challenge.nonce,
                                        challenge.base_fingerprint, "mon-1");
  client.send_raw(ingest::serialize_hello(hello));
  const auto error = client.read_frame();
  ASSERT_TRUE(error.has_value());
  ASSERT_EQ(error->type, FrameType::kError);
  EXPECT_EQ(ingest::parse_error(error->payload).code,
            TransportErrorCode::kAuthFailed);
  EXPECT_FALSE(client.read_frame().has_value());
  EXPECT_EQ(server.handshake_rejects(), 1u);
  EXPECT_EQ(server.sessions(), 0u);
  EXPECT_EQ(server.batches(), 0u);
}

TEST_F(TransportServerTest, BaseFingerprintMismatchRejected) {
  ingest::WatermarkTable watermarks;
  ingest::TransportServer server(options_, watermarks);
  TestClient client(server.port());
  client.send_magic();
  const auto frame = client.read_frame();
  ASSERT_TRUE(frame.has_value());
  const auto challenge = ingest::parse_challenge(frame->payload);

  // A sender configured against a different base run: the MAC is honest
  // (right secret) but pins the wrong fingerprint.
  const std::uint64_t other = challenge.base_fingerprint ^ 1;
  ingest::HelloFrame hello;
  hello.base_fingerprint = other;
  hello.session = "mon-1";
  hello.mac = ingest::compute_hello_mac("open sesame", challenge.nonce,
                                        other, "mon-1");
  client.send_raw(ingest::serialize_hello(hello));
  const auto error = client.read_frame();
  ASSERT_TRUE(error.has_value());
  ASSERT_EQ(error->type, FrameType::kError);
  EXPECT_EQ(ingest::parse_error(error->payload).code,
            TransportErrorCode::kBaseMismatch);
  EXPECT_EQ(server.handshake_rejects(), 1u);
}

TEST_F(TransportServerTest, PlaintextOpenerRefusedWithOneLine) {
  ingest::WatermarkTable watermarks;
  ingest::TransportServer server(options_, watermarks);
  {
    TestClient client(server.port());
    client.send_raw("0|10.2.0.2|10.1.0.1@1 10.2.0.1@2\n");
    const std::string reply = client.read_until_eof();
    EXPECT_NE(reply.find("ERR"), std::string::npos) << reply;
    EXPECT_NE(reply.find("MDP1"), std::string::npos) << reply;
    EXPECT_NE(reply.find("--listen-plain"), std::string::npos) << reply;
    EXPECT_EQ(reply.find('\n'), reply.size() - 1) << reply;  // one line
  }
  {  // An HTTP prober gets the same one-line refusal.
    TestClient client(server.port());
    client.send_raw("GET / HTTP/1.1\r\n\r\n");
    const std::string reply = client.read_until_eof();
    EXPECT_NE(reply.find("ERR"), std::string::npos) << reply;
  }
  EXPECT_EQ(server.refused_plaintext(), 2u);
  EXPECT_EQ(server.batches(), 0u);
}

TEST_F(TransportServerTest, BatchSequenceZeroRejected) {
  ingest::WatermarkTable watermarks;
  ingest::TransportServer server(options_, watermarks);
  TestClient client(server.port());
  (void)client.handshake("open sesame", "mon-1");
  ingest::BatchFrame batch;
  batch.seq = 0;
  batch.lines = {"x"};
  client.send_raw(ingest::serialize_batch(batch));
  const auto error = client.read_frame();
  ASSERT_TRUE(error.has_value());
  ASSERT_EQ(error->type, FrameType::kError);
  EXPECT_EQ(ingest::parse_error(error->payload).code,
            TransportErrorCode::kBadSequence);
}

}  // namespace
}  // namespace mapit
