// Degraded-mode ingest: a full disk is a pause, not a death.
//
// The acceptance bar: ENOSPC injected at any journal/publish syscall of a
// flush leaves run_ingest alive, parked in degraded mode, still tailing —
// and once the fault clears, the retried flush republishes bytes
// IDENTICAL to an unfaulted run's (completed stages are never redone, so
// recovery cannot double-fold). The matrix below walks every injectable
// flush syscall; the remaining tests pin multi-retry outages, failures
// inside the recovery path itself (the journal rollback), and the HEALTH
// endpoint's degraded=1 report that `mapit supervise` keys off.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/plan.h"
#include "ingest/pipeline.h"
#include "ingest/runner.h"

namespace mapit {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

constexpr const char* kRib =
    "rc0|10.1.0.0/16|100\n"
    "rc0|10.2.0.0/16|200\n"
    "rc0|10.3.0.0/16|300\n";

std::vector<std::string> corpus_lines() {
  std::vector<std::string> lines;
  for (int i = 0; i < 6; ++i) {
    const std::string a = std::to_string(2 + i);
    lines.push_back("0|10.2.0." + a + "|10.1.0.1@1 10.1.0." + a +
                    "@2 10.2.0.1@3 10.2.0." + a + "@4");
    lines.push_back("1|10.3.0." + a + "|10.2.0.1@1 10.2.0." + a +
                    "@2 10.3.0.1@3 10.3.0." + a + "@4");
  }
  for (int i = 0; i < 4; ++i) {
    const std::string a = std::to_string(20 + i);
    lines.push_back("0|10.3.0." + a + "|10.1.0.1@1 10.1.0." + a +
                    "@2 10.2.0.40@3 10.3.0.1@4 10.3.0." + a + "@5");
  }
  return lines;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& line : lines) out << line << "\n";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

int pick_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  ::socklen_t length = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
                    &length) != 0) {
    ::close(fd);
    return -1;
  }
  ::close(fd);
  return static_cast<int>(ntohs(addr.sin_port));
}

/// One HEALTH round trip against the ingest health endpoint. Empty string
/// when the endpoint is not answering (yet).
std::string query_health(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct ::timeval timeout{};
  timeout.tv_sec = 2;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  struct ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const char kProbe[] = "HEALTH\n";
  if (::send(fd, kProbe, sizeof(kProbe) - 1, MSG_NOSIGNAL) !=
      static_cast<ssize_t>(sizeof(kProbe) - 1)) {
    ::close(fd);
    return "";
  }
  std::string reply;
  char buffer[512];
  const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  if (n > 0) reply.assign(buffer, static_cast<std::size_t>(n));
  ::close(fd);
  return reply;
}

class DegradedIngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mapit_degraded_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    lines_ = corpus_lines();
    base_count_ = lines_.size() / 2;
    rib_path_ = (dir_ / "rib.txt").string();
    std::ofstream rib(rib_path_);
    rib << kRib;
    full_path_ = (dir_ / "full.txt").string();
    write_lines(full_path_, lines_);
    base_path_ = (dir_ / "base.txt").string();
    write_lines(base_path_, std::vector<std::string>(
                                lines_.begin(),
                                lines_.begin() +
                                    static_cast<std::ptrdiff_t>(base_count_)));
    follow_path_ = (dir_ / "delta_follow.txt").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  ingest::IngestOptions options() const {
    ingest::IngestOptions opts;
    opts.traces_path = base_path_;
    opts.rib_path = rib_path_;
    opts.engine_options.threads = 1;
    opts.journal_path = (dir_ / "delta.jnl").string();
    opts.out_path = (dir_ / "live.snap").string();
    opts.follow_path = follow_path_;
    opts.drain = true;
    opts.retry_interval = 0.02;
    return opts;
  }

  void fresh_state(const ingest::IngestOptions& opts) const {
    fs::remove(opts.journal_path);
    fs::remove(opts.out_path);
  }

  void write_delta() const {
    write_lines(follow_path_,
                std::vector<std::string>(
                    lines_.begin() +
                        static_cast<std::ptrdiff_t>(base_count_),
                    lines_.end()));
  }

  std::string cold_bytes() const {
    ingest::IngestSetup setup;
    setup.traces_path = full_path_;
    setup.rib_path = rib_path_;
    setup.options.threads = 1;
    const ingest::IngestPipeline pipeline(setup);
    return pipeline.serialize();
  }

  std::size_t delta_count() const { return lines_.size() - base_count_; }

  fs::path dir_;
  std::vector<std::string> lines_;
  std::size_t base_count_ = 0;
  std::string rib_path_;
  std::string full_path_;
  std::string base_path_;
  std::string follow_path_;
};

TEST_F(DegradedIngestTest, EnospcAtEveryFlushSyscallSurvivesByteIdentical) {
  const std::string cold = cold_bytes();
  ASSERT_FALSE(cold.empty());
  ingest::IngestOptions opts = options();

  // Counting run A: empty delta — only the startup sequence (journal
  // creation, replay, initial publish) plus one idle source poll. Its
  // per-op counts mark where the batch-flush window begins.
  write_lines(follow_path_, {});
  fresh_state(opts);
  fault::FaultPlan startup_counter;
  opts.io = &startup_counter;
  (void)ingest::run_ingest(opts);

  // Counting run B: the full delta. Ops in (A, B] belong to the batch
  // flush — journal appends, syncs, the publish, the commit record.
  write_delta();
  fresh_state(opts);
  fault::FaultPlan full_counter;
  opts.io = &full_counter;
  (void)ingest::run_ingest(opts);
  ASSERT_EQ(read_file(opts.out_path), cold);

  struct MatrixOp {
    fault::Op op;
    bool from_startup;    ///< include the startup window (publish retry)
    bool expect_degraded; ///< every hit must park the flush (no other user)
  };
  // kOpen is shared with the tailer's rotation probe, where a transient
  // ENOSPC is deliberately skipped — so only the byte-identity is
  // asserted there, not the degraded entry. kRename's startup window is
  // excluded because its first call creates the journal itself, which is
  // fatal by design (pinned separately below).
  const MatrixOp kMatrix[] = {
      {fault::Op::kWrite, false, true},
      {fault::Op::kFsync, false, true},
      {fault::Op::kRename, false, true},
      {fault::Op::kOpen, false, false},
  };
  int points = 0;
  for (const MatrixOp& entry : kMatrix) {
    const std::uint64_t first =
        entry.from_startup ? 1 : startup_counter.calls(entry.op) + 1;
    const std::uint64_t last = full_counter.calls(entry.op);
    if (last < first) continue;
    const std::uint64_t span = last - first + 1;
    const std::uint64_t stride = span > 8 ? span / 8 : 1;
    for (std::uint64_t nth = first; nth <= last; nth += stride) {
      fresh_state(opts);
      fault::FaultPlan plan;
      plan.add(fault::Fault{
          .op = entry.op, .nth = nth, .inject_errno = ENOSPC});
      opts.io = &plan;
      ingest::IngestStats stats;
      ASSERT_NO_THROW(stats = ingest::run_ingest(opts))
          << to_string(entry.op) << " call " << nth;
      EXPECT_EQ(read_file(opts.out_path), cold)
          << to_string(entry.op) << " call " << nth;
      EXPECT_EQ(stats.folded_traces, delta_count())
          << to_string(entry.op) << " call " << nth;
      if (entry.expect_degraded) {
        EXPECT_GE(stats.degraded_entries, 1u)
            << to_string(entry.op) << " call " << nth;
      }
      ++points;
    }
  }
  EXPECT_GE(points, 10);

  // Startup boundary, pinned from both sides. The startup publish (run
  // A's last rename) is degraded-retryable like any publish; creating
  // the journal itself (rename #1) has nothing to retry into — no
  // journal, no WAL — and stays fatal.
  const std::uint64_t startup_renames =
      startup_counter.calls(fault::Op::kRename);
  ASSERT_GE(startup_renames, 2u);
  {
    fresh_state(opts);
    fault::FaultPlan plan;
    plan.add(fault::Fault{.op = fault::Op::kRename,
                          .nth = startup_renames,
                          .inject_errno = ENOSPC});
    opts.io = &plan;
    ingest::IngestStats stats;
    ASSERT_NO_THROW(stats = ingest::run_ingest(opts));
    EXPECT_EQ(read_file(opts.out_path), cold);
    EXPECT_GE(stats.degraded_entries, 1u);
  }
  {
    fresh_state(opts);
    fault::FaultPlan plan;
    plan.add(fault::Fault{
        .op = fault::Op::kRename, .nth = 1, .inject_errno = ENOSPC});
    opts.io = &plan;
    EXPECT_THROW((void)ingest::run_ingest(opts), Error);
  }
}

TEST_F(DegradedIngestTest, OutageSpanningSeveralRetriesRecovers) {
  const std::string cold = cold_bytes();
  ingest::IngestOptions opts = options();

  write_lines(follow_path_, {});
  fresh_state(opts);
  fault::FaultPlan startup_counter;
  opts.io = &startup_counter;
  (void)ingest::run_ingest(opts);

  // The first batch journal append fails four times in a row — the park
  // must hold through repeated retry attempts and still land identically.
  write_delta();
  fresh_state(opts);
  fault::FaultPlan plan;
  plan.add(fault::Fault{.op = fault::Op::kWrite,
                        .nth = startup_counter.calls(fault::Op::kWrite) + 1,
                        .repeat = 4,
                        .inject_errno = ENOSPC});
  opts.io = &plan;
  std::ostringstream log;
  opts.log = &log;
  const ingest::IngestStats stats = ingest::run_ingest(opts);
  EXPECT_EQ(read_file(opts.out_path), cold);
  EXPECT_EQ(stats.folded_traces, delta_count());
  EXPECT_GE(stats.degraded_entries, 1u);
  EXPECT_NE(log.str().find("DEGRADED"), std::string::npos);
  EXPECT_NE(log.str().find("recovered from degraded mode"),
            std::string::npos);
}

TEST_F(DegradedIngestTest, RollbackFailureInsideRecoveryAlsoRetries) {
  const std::string cold = cold_bytes();
  ingest::IngestOptions opts = options();

  write_lines(follow_path_, {});
  fresh_state(opts);
  fault::FaultPlan startup_counter;
  opts.io = &startup_counter;
  (void)ingest::run_ingest(opts);

  // A failed append dirties the journal; the retry's first move is an
  // ftruncate rollback — which we also fail once. The park must simply
  // hold one retry longer.
  write_delta();
  fresh_state(opts);
  fault::FaultPlan plan;
  plan.add(fault::Fault{.op = fault::Op::kWrite,
                        .nth = startup_counter.calls(fault::Op::kWrite) + 1,
                        .inject_errno = ENOSPC});
  plan.add(fault::Fault{
      .op = fault::Op::kFtruncate, .nth = 1, .inject_errno = ENOSPC});
  opts.io = &plan;
  const ingest::IngestStats stats = ingest::run_ingest(opts);
  EXPECT_EQ(read_file(opts.out_path), cold);
  EXPECT_EQ(stats.folded_traces, delta_count());
  EXPECT_GE(stats.degraded_entries, 1u);
  EXPECT_EQ(plan.triggered(), 2u);
}

TEST_F(DegradedIngestTest, HealthEndpointReportsDegradedWhileParked) {
  ingest::IngestOptions opts = options();

  write_lines(follow_path_, {});
  fresh_state(opts);
  fault::FaultPlan startup_counter;
  opts.io = &startup_counter;
  (void)ingest::run_ingest(opts);

  // Live (non-drain) run whose batch journal appends fail forever: the
  // flush parks degraded and stays there until we stop the run. The
  // HEALTH endpoint must say so — that line is what `mapit supervise`
  // and operators key off.
  write_delta();
  fresh_state(opts);
  const int port = pick_port();
  ASSERT_GT(port, 0);
  fault::FaultPlan plan;
  plan.add(fault::Fault{.op = fault::Op::kWrite,
                        .nth = startup_counter.calls(fault::Op::kWrite) + 1,
                        .repeat = 1000000,
                        .inject_errno = ENOSPC});
  opts.io = &plan;
  opts.drain = false;
  opts.batch_lines = 4;
  opts.batch_seconds = 0.1;
  opts.poll_interval = 0.02;
  opts.health_port = port;

  std::atomic<bool> stop{false};
  ingest::IngestStats stats;
  std::thread runner(
      [&] { stats = ingest::run_ingest(opts, &stop); });
  std::string reply;
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (std::chrono::steady_clock::now() < deadline) {
    reply = query_health(port);
    if (reply.find(" degraded=1") != std::string::npos) break;
    std::this_thread::sleep_for(50ms);
  }
  stop.store(true);
  runner.join();

  ASSERT_FALSE(reply.empty()) << "health endpoint never answered";
  EXPECT_EQ(reply.rfind("OK ", 0), 0u) << reply;
  EXPECT_NE(reply.find(" degraded=1"), std::string::npos) << reply;
  EXPECT_NE(reply.find(" last_error="), std::string::npos) << reply;
  EXPECT_EQ(reply.find(" last_error=none"), std::string::npos) << reply;
  EXPECT_GE(stats.degraded_entries, 1u);
  EXPECT_EQ(stats.health_port, static_cast<std::uint16_t>(port));
}

}  // namespace
}  // namespace mapit
