// End-to-end MDP1 remote ingestion: `run_sender` against `run_ingest
// --listen`, plus hand-rolled clients for the scenarios a well-behaved
// sender cannot produce on demand (deliberate duplicates, a crash injected
// between the journal fsync and the ACK).
//
// The acceptance bar is the repo's one invariant: after ANY combination of
// sender restart, receiver crash, dropped connection, or replayed frames,
// the published snapshot is byte-identical to a cold batch run over
// base + deltas — and a rejected handshake (wrong secret, wrong base
// fingerprint) writes nothing to the journal at all.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fault/plan.h"
#include "ingest/pipeline.h"
#include "ingest/runner.h"
#include "ingest/sender.h"
#include "ingest/transport.h"

namespace mapit {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

constexpr const char* kRib =
    "rc0|11.1.0.0/16|100\n"
    "rc0|11.2.0.0/16|200\n"
    "rc0|11.3.0.0/16|300\n";

// Same hand-sized internet the ingest equivalence test uses. The crossings
// through 11.2.0.40 live only in the second half, so the delta provably
// changes the published bytes — the fixture asserts base != cold, keeping
// every "snapshot equals cold run" check in this file non-vacuous.
std::vector<std::string> corpus_lines() {
  std::vector<std::string> lines;
  for (int i = 0; i < 6; ++i) {
    const std::string a = std::to_string(2 + i);
    lines.push_back("0|11.2.0." + a + "|11.1.0.1@1 11.1.0." + a +
                    "@2 11.2.0.1@3 11.2.0." + a + "@4");
    lines.push_back("1|11.3.0." + a + "|11.2.0.1@1 11.2.0." + a +
                    "@2 11.3.0.1@3 11.3.0." + a + "@4");
    lines.push_back("2|11.1.0." + a + "|11.3.0.1@1 11.3.0." + a +
                    "@2 11.2.0.1@3 11.2.0." + a + "@4 11.1.0.1@5 11.1.0." +
                    a + "@6");
  }
  for (int i = 0; i < 6; ++i) {
    const std::string a = std::to_string(20 + i);
    lines.push_back("0|11.3.0." + a + "|11.1.0.1@1 11.1.0." + a +
                    "@2 11.2.0.40@3 11.3.0.1@4 11.3.0." + a + "@5");
    lines.push_back("1|11.1.0." + a + "|11.2.0.40@1 11.2.0." + a +
                    "@2 11.1.0.1@3 11.1.0." + a + "@4");
  }
  return lines;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& line : lines) out << line << "\n";
}

void append_lines(const std::string& path,
                  const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::app);
  for (const std::string& line : lines) out << line << "\n";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

int pick_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  ::socklen_t length = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
                    &length) != 0) {
    ::close(fd);
    return -1;
  }
  ::close(fd);
  return static_cast<int>(ntohs(addr.sin_port));
}

std::string query_health(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct ::timeval timeout{};
  timeout.tv_sec = 2;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  struct ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const char kProbe[] = "HEALTH\n";
  if (::send(fd, kProbe, sizeof(kProbe) - 1, MSG_NOSIGNAL) !=
      static_cast<ssize_t>(sizeof(kProbe) - 1)) {
    ::close(fd);
    return "";
  }
  std::string reply;
  char buffer[512];
  const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  if (n > 0) reply.assign(buffer, static_cast<std::size_t>(n));
  ::close(fd);
  return reply;
}

/// run_ingest on a worker thread: start(), then finish() to request a
/// stop, join, and rethrow whatever the run threw (InjectedCrash included).
class IngestRun {
 public:
  ~IngestRun() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }

  void start(const ingest::IngestOptions& options) {
    thread_ = std::thread([this, options] {
      try {
        stats_ = ingest::run_ingest(options, &stop_);
      } catch (...) {
        error_ = std::current_exception();
      }
    });
  }

  ingest::IngestStats finish() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
    if (error_) std::rethrow_exception(error_);
    return stats_;
  }

 private:
  std::thread thread_;
  std::atomic<bool> stop_{false};
  ingest::IngestStats stats_;
  std::exception_ptr error_;
};

/// Hand-rolled MDP1 client for the paths run_sender is too well-behaved to
/// exercise: deliberate duplicate BATCHes and reads across a server crash.
class RawClient {
 public:
  explicit RawClient(int port) {
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (fd_ < 0 && std::chrono::steady_clock::now() < deadline) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) break;
      struct ::sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::connect(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        fd_ = fd;
        struct ::timeval timeout{};
        timeout.tv_usec = 100000;
        (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                           sizeof(timeout));
        const int one = 1;
        (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        break;
      }
      ::close(fd);
      std::this_thread::sleep_for(10ms);
    }
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  void send_raw(std::string_view bytes) {
    ASSERT_GE(fd_, 0);
    EXPECT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  std::optional<ingest::Frame> read_frame() {
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    ingest::Frame frame;
    while (std::chrono::steady_clock::now() < deadline) {
      if (reader_.next(frame)) return frame;
      char buffer[4096];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n > 0) {
        reader_.append(std::string_view(buffer,
                                        static_cast<std::size_t>(n)));
      } else if (n == 0) {
        return std::nullopt;
      }
    }
    return std::nullopt;
  }

  /// Full handshake; returns the server's durable watermark (HELLO_ACK).
  std::optional<ingest::HelloAckFrame> handshake(const std::string& secret,
                                                const std::string& session) {
    send_raw(std::string_view(ingest::kTransportMagic,
                              sizeof(ingest::kTransportMagic)));
    const auto challenge_frame = read_frame();
    if (!challenge_frame ||
        challenge_frame->type != ingest::FrameType::kChallenge) {
      return std::nullopt;
    }
    const auto challenge = ingest::parse_challenge(challenge_frame->payload);
    ingest::HelloFrame hello;
    hello.base_fingerprint = challenge.base_fingerprint;
    hello.session = session;
    hello.mac = ingest::compute_hello_mac(secret, challenge.nonce,
                                          challenge.base_fingerprint,
                                          session);
    send_raw(ingest::serialize_hello(hello));
    const auto ack = read_frame();
    if (!ack || ack->type != ingest::FrameType::kHelloAck) {
      return std::nullopt;
    }
    return ingest::parse_hello_ack(ack->payload);
  }

 private:
  int fd_ = -1;
  ingest::FrameReader reader_;
};

class RemoteIngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mapit_remote_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    lines_ = corpus_lines();
    base_count_ = lines_.size() / 2;
    rib_path_ = (dir_ / "rib.txt").string();
    std::ofstream rib(rib_path_);
    rib << kRib;
    full_path_ = (dir_ / "full.txt").string();
    write_lines(full_path_, lines_);
    base_path_ = (dir_ / "base.txt").string();
    write_lines(base_path_, std::vector<std::string>(
                                lines_.begin(),
                                lines_.begin() +
                                    static_cast<std::ptrdiff_t>(base_count_)));
    send_path_ = (dir_ / "send.txt").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Receiver options: MDP1 listener, no tailed file, fast cadences,
  /// liveness timers off so server sends are a deterministic sequence.
  ingest::IngestOptions listen_options(int port, unsigned threads = 1) const {
    ingest::IngestOptions opts;
    opts.traces_path = base_path_;
    opts.rib_path = rib_path_;
    opts.engine_options.threads = threads;
    opts.journal_path = (dir_ / "delta.jnl").string();
    opts.out_path = (dir_ / "live.snap").string();
    opts.listen_port = port;
    opts.secret = kSecret;
    opts.transport_heartbeat_seconds = 0;
    opts.transport_deadline_seconds = 0;
    opts.batch_seconds = 0.05;
    opts.poll_interval = 0.005;
    opts.retry_interval = 0.02;
    return opts;
  }

  ingest::SendOptions send_options(int port) const {
    ingest::SendOptions opts;
    opts.port = static_cast<std::uint16_t>(port);
    opts.path = send_path_;
    opts.session = "mon-a";
    opts.secret = kSecret;
    opts.batch_lines = 3;  // several batches per run
    opts.batch_seconds = 0.05;
    opts.poll_seconds = 0.01;
    opts.window = 2;
    opts.heartbeat_seconds = 0;
    opts.deadline_seconds = 0;
    opts.reconnect_base_seconds = 0.02;
    opts.reconnect_cap_seconds = 0.1;
    opts.max_attempts = 500;  // ~10s of patience for the listener to bind
    return opts;
  }

  std::vector<std::string> delta_lines() const {
    return std::vector<std::string>(
        lines_.begin() + static_cast<std::ptrdiff_t>(base_count_),
        lines_.end());
  }

  std::string cold_bytes(unsigned threads = 1) const {
    return serialize_corpus(full_path_, threads);
  }

  /// The base-only snapshot — what the receiver publishes before any delta
  /// folds. Tests assert it differs from cold_bytes() so byte-identity
  /// after folding actually proves the deltas landed.
  std::string base_bytes(unsigned threads = 1) const {
    return serialize_corpus(base_path_, threads);
  }

  std::string serialize_corpus(const std::string& traces_path,
                               unsigned threads) const {
    ingest::IngestSetup setup;
    setup.traces_path = traces_path;
    setup.rib_path = rib_path_;
    setup.options.threads = threads;
    const ingest::IngestPipeline pipeline(setup);
    return pipeline.serialize();
  }

  /// Waits for the journal to go quiescent (no writes for ~5 polls).
  std::uintmax_t stable_journal_size() const {
    const std::string path = (dir_ / "delta.jnl").string();
    std::uintmax_t last = 0;
    int stable = 0;
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      std::error_code ec;
      const std::uintmax_t size = fs::file_size(path, ec);
      if (!ec && size == last) {
        if (++stable >= 5) return size;
      } else {
        stable = 0;
        last = ec ? 0 : size;
      }
      std::this_thread::sleep_for(20ms);
    }
    return last;
  }

  static constexpr const char* kSecret = "remote ingest test secret";
  std::atomic<bool> never_stop_{false};

  fs::path dir_;
  std::vector<std::string> lines_;
  std::size_t base_count_ = 0;
  std::string rib_path_;
  std::string full_path_;
  std::string base_path_;
  std::string send_path_;
};

TEST_F(RemoteIngestTest, SenderDrainMatchesColdAcrossThreadCounts) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ASSERT_NE(cold_bytes(threads), base_bytes(threads));
    fs::remove(dir_ / "delta.jnl");
    fs::remove(dir_ / "live.snap");
    write_lines(send_path_, delta_lines());

    const int port = pick_port();
    const int health_port = pick_port();
    ASSERT_GT(port, 0);
    ingest::IngestOptions opts = listen_options(port, threads);
    opts.health_port = health_port;
    IngestRun run;
    run.start(opts);

    const ingest::SendStats sent =
        ingest::run_sender(send_options(port), never_stop_);
    EXPECT_EQ(sent.lines_sent, delta_lines().size());
    EXPECT_EQ(sent.batches_acked, sent.batches_sent);
    EXPECT_GT(sent.last_acked_seq, 0u);
    EXPECT_EQ(sent.acked_offset, fs::file_size(send_path_));

    // Satellite: HEALTH now reports live sessions and the ACK watermark.
    std::string health;
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (std::chrono::steady_clock::now() < deadline) {
      health = query_health(health_port);
      if (health.find("last_ack=mon-a:") != std::string::npos) break;
      std::this_thread::sleep_for(20ms);
    }
    EXPECT_NE(health.find("sessions="), std::string::npos) << health;
    EXPECT_NE(health.find("last_ack=mon-a:" +
                          std::to_string(sent.last_acked_seq)),
              std::string::npos)
        << health;

    const ingest::IngestStats stats = run.finish();
    EXPECT_EQ(stats.remote_batches, sent.batches_acked);
    EXPECT_EQ(stats.folded_traces, delta_lines().size());
    EXPECT_EQ(read_file((dir_ / "live.snap").string()), cold_bytes(threads));
  }
}

TEST_F(RemoteIngestTest, SenderRestartResumesFromDurableOffset) {
  const std::vector<std::string> delta = delta_lines();
  const std::size_t first_half = delta.size() / 2;
  write_lines(send_path_,
              std::vector<std::string>(delta.begin(),
                                       delta.begin() +
                                           static_cast<std::ptrdiff_t>(
                                               first_half)));

  const int port = pick_port();
  ASSERT_GT(port, 0);
  IngestRun run;
  run.start(listen_options(port));

  // "Process one": drains the first half, then exits (kill -9 equivalent —
  // a fresh run_sender call starts with no in-memory state).
  const ingest::SendStats first =
      ingest::run_sender(send_options(port), never_stop_);
  EXPECT_EQ(first.lines_sent, first_half);
  const std::uintmax_t half_bytes = fs::file_size(send_path_);
  EXPECT_EQ(first.acked_offset, half_bytes);

  // "Process two": the file has grown; resume must come from the server's
  // HELLO_ACK offset — only the new lines are read and sent.
  append_lines(send_path_,
               std::vector<std::string>(delta.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                first_half),
                                        delta.end()));
  const ingest::SendStats second =
      ingest::run_sender(send_options(port), never_stop_);
  EXPECT_EQ(second.lines_sent, delta.size() - first_half);
  EXPECT_GT(second.last_acked_seq, first.last_acked_seq);
  EXPECT_EQ(second.acked_offset, fs::file_size(send_path_));

  const ingest::IngestStats stats = run.finish();
  EXPECT_EQ(stats.folded_traces, delta.size());
  EXPECT_EQ(stats.remote_duplicates, 0u);
  const std::string live = read_file((dir_ / "live.snap").string());
  EXPECT_EQ(live, cold_bytes());

  // A restarted receiver replays the kRemoteBatch records — watermark and
  // lines restored together — and republishes identical bytes.
  ingest::IngestOptions replay = listen_options(-1);
  replay.listen_port = -1;
  replay.secret.clear();
  replay.drain = true;
  IngestRun replay_run;
  replay_run.start(replay);
  const ingest::IngestStats replayed = replay_run.finish();
  EXPECT_EQ(replayed.replayed_traces, delta.size());
  EXPECT_EQ(read_file((dir_ / "live.snap").string()), live);
}

TEST_F(RemoteIngestTest, DuplicateResendIsDroppedWithoutJournalWrites) {
  const std::vector<std::string> delta = delta_lines();
  const int port = pick_port();
  ASSERT_GT(port, 0);
  IngestRun run;
  run.start(listen_options(port));

  RawClient client(port);
  ASSERT_TRUE(client.connected());
  const auto hello_ack = client.handshake(kSecret, "mon-dup");
  ASSERT_TRUE(hello_ack.has_value());
  EXPECT_EQ(hello_ack->last_seq, 0u);

  ingest::BatchFrame batch;
  batch.seq = 1;
  batch.end_offset = 1000;
  batch.lines = delta;
  client.send_raw(ingest::serialize_batch(batch));
  const auto ack = client.read_frame();
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, ingest::FrameType::kAck);
  EXPECT_EQ(ingest::parse_ack(ack->payload).seq, 1u);

  // Let the fold/commit land, then prove the duplicate writes nothing.
  const std::uintmax_t before = stable_journal_size();
  client.send_raw(ingest::serialize_batch(batch));
  const auto re_ack = client.read_frame();
  ASSERT_TRUE(re_ack.has_value());
  ASSERT_EQ(re_ack->type, ingest::FrameType::kAck);
  EXPECT_EQ(ingest::parse_ack(re_ack->payload).seq, 1u);
  EXPECT_EQ(ingest::parse_ack(re_ack->payload).end_offset, 1000u);
  std::this_thread::sleep_for(200ms);
  EXPECT_EQ(fs::file_size(dir_ / "delta.jnl"), before);

  const ingest::IngestStats stats = run.finish();
  EXPECT_EQ(stats.remote_batches, 1u);
  EXPECT_EQ(stats.remote_duplicates, 1u);
  EXPECT_EQ(read_file((dir_ / "live.snap").string()), cold_bytes());
}

TEST_F(RemoteIngestTest, CrashBetweenFsyncAndAckIsDedupedOnReconnect) {
  const std::vector<std::string> delta = delta_lines();
  const int port = pick_port();
  ASSERT_GT(port, 0);

  // With heartbeats and deadlines off and one client, the receiver's send
  // sequence is exactly CHALLENGE (1), HELLO_ACK (2), first ACK (3). Crash
  // at #3: the batch is journaled + fsynced, the sender never hears it.
  fault::FaultPlan plan;
  plan.add(fault::Fault{.op = fault::Op::kSend, .nth = 3, .crash = true});
  ingest::IngestOptions crash_opts = listen_options(port);
  crash_opts.io = &plan;
  IngestRun crashed;
  crashed.start(crash_opts);

  {
    RawClient client(port);
    ASSERT_TRUE(client.connected());
    const auto hello_ack = client.handshake(kSecret, "mon-crash");
    ASSERT_TRUE(hello_ack.has_value());
    ingest::BatchFrame batch;
    batch.seq = 1;
    batch.end_offset = 777;
    batch.lines = delta;
    client.send_raw(ingest::serialize_batch(batch));
    EXPECT_FALSE(client.read_frame().has_value());  // no ACK, just EOF
  }
  EXPECT_THROW((void)crashed.finish(), fault::InjectedCrash);

  // Restart. HELLO_ACK must already name the batch (durable before ACK),
  // and the reconnecting sender's inevitable resend must be re-ACKed
  // without another journal write.
  const int port2 = pick_port();
  ASSERT_GT(port2, 0);
  IngestRun recovered;
  recovered.start(listen_options(port2));

  RawClient client(port2);
  ASSERT_TRUE(client.connected());
  const auto hello_ack = client.handshake(kSecret, "mon-crash");
  ASSERT_TRUE(hello_ack.has_value());
  EXPECT_EQ(hello_ack->last_seq, 1u);
  EXPECT_EQ(hello_ack->last_offset, 777u);

  const std::uintmax_t before = stable_journal_size();
  ingest::BatchFrame batch;
  batch.seq = 1;
  batch.end_offset = 777;
  batch.lines = delta;
  client.send_raw(ingest::serialize_batch(batch));
  const auto re_ack = client.read_frame();
  ASSERT_TRUE(re_ack.has_value());
  ASSERT_EQ(re_ack->type, ingest::FrameType::kAck);
  EXPECT_EQ(ingest::parse_ack(re_ack->payload).seq, 1u);
  std::this_thread::sleep_for(200ms);
  EXPECT_EQ(fs::file_size(dir_ / "delta.jnl"), before);

  const ingest::IngestStats stats = recovered.finish();
  EXPECT_EQ(stats.replayed_traces, delta.size());
  EXPECT_EQ(stats.remote_duplicates, 1u);
  EXPECT_EQ(stats.remote_batches, 0u);
  EXPECT_EQ(read_file((dir_ / "live.snap").string()), cold_bytes());
}

TEST_F(RemoteIngestTest, OffsetRegressingBatchNeverReachesJournal) {
  const std::vector<std::string> delta = delta_lines();
  const std::size_t half = delta.size() / 2;
  const int port = pick_port();
  ASSERT_GT(port, 0);
  std::ostringstream log;
  ingest::IngestOptions opts = listen_options(port);
  opts.log = &log;
  IngestRun run;
  run.start(opts);

  RawClient client(port);
  ASSERT_TRUE(client.connected());
  const auto hello_ack = client.handshake(kSecret, "mon-reg");
  ASSERT_TRUE(hello_ack.has_value());

  ingest::BatchFrame batch;
  batch.seq = 1;
  batch.end_offset = 500;
  batch.lines = std::vector<std::string>(
      delta.begin(), delta.begin() + static_cast<std::ptrdiff_t>(half));
  client.send_raw(ingest::serialize_batch(batch));
  const auto ack = client.read_frame();
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, ingest::FrameType::kAck);

  // seq advances but the offset regresses: a sender bug the exactly-once
  // machinery cannot repair. Journaling it would poison the journal —
  // replay rejects offset regressions as corruption — so the runner must
  // drop it before the append, without an ACK.
  const std::uintmax_t before = stable_journal_size();
  batch.seq = 2;
  batch.end_offset = 400;
  batch.lines = std::vector<std::string>(
      delta.begin() + static_cast<std::ptrdiff_t>(half), delta.end());
  client.send_raw(ingest::serialize_batch(batch));
  std::this_thread::sleep_for(300ms);
  EXPECT_EQ(fs::file_size(dir_ / "delta.jnl"), before);

  const ingest::IngestStats stats = run.finish();
  EXPECT_EQ(stats.remote_batches, 1u);
  EXPECT_NE(log.str().find("offset-regressing"), std::string::npos)
      << log.str();

  // The journal stayed clean: a restarted receiver replays it whole.
  ingest::IngestOptions replay = listen_options(-1);
  replay.listen_port = -1;
  replay.secret.clear();
  replay.drain = true;
  IngestRun replay_run;
  replay_run.start(replay);
  const ingest::IngestStats replayed = replay_run.finish();
  EXPECT_EQ(replayed.replayed_traces, half);
}

TEST_F(RemoteIngestTest, RetryableServerErrorTriggersReconnectNotExit) {
  write_lines(send_path_, delta_lines());

  // A hand-rolled receiver whose first connection rejects the opening
  // BATCH with kOverloaded ("retry later") and whose second connection
  // behaves: the sender must reconnect and drain, not exit with an error.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  struct ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<struct ::sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  ::socklen_t length = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd,
                          reinterpret_cast<struct ::sockaddr*>(&addr),
                          &length),
            0);
  const int port = ntohs(addr.sin_port);

  std::thread server([listen_fd] {
    const auto send_all = [](int fd, const std::string& bytes) {
      (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    };
    for (int attempt = 0; attempt < 2; ++attempt) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;
      struct ::timeval timeout{};
      timeout.tv_sec = 5;
      (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                         sizeof(timeout));
      ingest::FrameReader reader;
      const auto next_frame = [&](ingest::Frame& frame) -> bool {
        char buffer[4096];
        while (true) {
          if (reader.next(frame)) return true;
          const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
          if (n > 0) {
            reader.append(std::string_view(buffer,
                                           static_cast<std::size_t>(n)));
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          return false;  // EOF or timeout: give up on this connection
        }
      };
      // Magic, CHALLENGE out, HELLO in (accepted unchecked), HELLO_ACK out.
      std::size_t got = 0;
      char magic[sizeof(ingest::kTransportMagic)];
      while (got < sizeof(magic)) {
        const ssize_t n = ::recv(fd, magic + got, sizeof(magic) - got, 0);
        if (n <= 0) break;
        got += static_cast<std::size_t>(n);
      }
      ingest::ChallengeFrame challenge;
      challenge.base_fingerprint = 42;
      send_all(fd, ingest::serialize_challenge(challenge));
      ingest::Frame frame;
      while (next_frame(frame) &&
             frame.type != ingest::FrameType::kHello) {
      }
      send_all(fd, ingest::serialize_hello_ack(ingest::HelloAckFrame{}));
      if (attempt == 0) {
        while (next_frame(frame) &&
               frame.type != ingest::FrameType::kBatch) {
        }
        send_all(fd, ingest::serialize_error(ingest::ErrorFrame{
                         .code = ingest::TransportErrorCode::kOverloaded,
                         .message = "shedding load"}));
        std::this_thread::sleep_for(300ms);  // let the ERROR reach the peer
        ::close(fd);
        continue;
      }
      while (next_frame(frame)) {
        if (frame.type != ingest::FrameType::kBatch) continue;
        const auto batch = ingest::parse_batch(frame.payload);
        send_all(fd, ingest::serialize_ack(ingest::AckFrame{
                         .seq = batch.seq, .end_offset = batch.end_offset}));
      }
      ::close(fd);
    }
  });

  const ingest::SendStats stats =
      ingest::run_sender(send_options(port), never_stop_);
  server.join();
  ::close(listen_fd);

  EXPECT_EQ(stats.reconnects, 1u);
  EXPECT_EQ(stats.lines_sent, delta_lines().size());
  EXPECT_GT(stats.batches_resent, 0u);
  EXPECT_EQ(stats.batches_acked, stats.batches_sent);
  EXPECT_EQ(stats.acked_offset, fs::file_size(send_path_));
}

TEST_F(RemoteIngestTest, RejectedHandshakesWriteNothing) {
  write_lines(send_path_, delta_lines());
  const int port = pick_port();
  ASSERT_GT(port, 0);
  IngestRun run;
  run.start(listen_options(port));

  // Wait for the listener, then freeze the baseline journal size.
  {
    RawClient probe(port);
    ASSERT_TRUE(probe.connected());
  }
  const std::uintmax_t before = stable_journal_size();

  ingest::SendOptions wrong_secret = send_options(port);
  wrong_secret.secret = "not the secret";
  EXPECT_THROW((void)ingest::run_sender(wrong_secret, never_stop_),
               ingest::TransportAuthError);

  ingest::SendOptions wrong_base = send_options(port);
  wrong_base.expect_base = 0xdeadbeefdeadbeefULL;
  EXPECT_THROW((void)ingest::run_sender(wrong_base, never_stop_),
               ingest::TransportAuthError);

  EXPECT_EQ(fs::file_size(dir_ / "delta.jnl"), before);
  const ingest::IngestStats stats = run.finish();
  EXPECT_EQ(stats.remote_batches, 0u);
  EXPECT_EQ(stats.folded_traces, 0u);
}

TEST_F(RemoteIngestTest, PlainListenerKeepsLegacyLineProtocol) {
  const int port = pick_port();
  ASSERT_GT(port, 0);
  ingest::IngestOptions opts = listen_options(-1);
  opts.listen_port = -1;
  opts.secret.clear();
  opts.listen_plain_port = port;
  IngestRun run;
  run.start(opts);

  {
    RawClient client(port);
    ASSERT_TRUE(client.connected());
    std::string payload;
    for (const std::string& line : delta_lines()) payload += line + "\n";
    client.send_raw(payload);
  }

  // No ACKs in the legacy protocol: poll the published snapshot instead.
  const std::string cold = cold_bytes();
  ASSERT_NE(cold, base_bytes());
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (read_file((dir_ / "live.snap").string()) == cold) break;
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_EQ(read_file((dir_ / "live.snap").string()), cold);
  const ingest::IngestStats stats = run.finish();
  EXPECT_EQ(stats.folded_traces, delta_lines().size());
  EXPECT_EQ(stats.remote_batches, 0u);
}

TEST_F(RemoteIngestTest, UnreachableReceiverExhaustsRetries) {
  write_lines(send_path_, delta_lines());
  ingest::SendOptions opts = send_options(pick_port());  // nothing listening
  opts.max_attempts = 2;
  opts.reconnect_base_seconds = 0.01;
  EXPECT_THROW((void)ingest::run_sender(opts, never_stop_),
               ingest::TransportRetriesExhausted);
}

}  // namespace
}  // namespace mapit
