// Delta-journal format tests: round-trip, the torn-tail / corruption
// distinction (an incomplete tail record is silently truncated; a complete
// record that fails validation is rejected loudly), identity verification
// against the base run, and the crash matrix — a crash, ENOSPC, or short
// write at ANY injected syscall of a journal session must leave the file
// replayable to a valid prefix of what was appended, never unreadable.
#include "core/journal.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fault/plan.h"

namespace mapit::core {
namespace {

namespace fs = std::filesystem;

CheckpointMeta meta_a() {
  CheckpointMeta meta;
  meta.config_hash = 0x1111111111111111ull;
  meta.corpus_fingerprint = 0x2222222222222222ull;
  meta.rib_fingerprint = 0x3333333333333333ull;
  meta.datasets_fingerprint = 0x4444444444444444ull;
  return meta;
}

std::vector<JournalRecord> sample_records() {
  return {
      JournalRecord::trace(0, "m 10.0.0.1 10.0.0.2 10.0.0.3 d"),
      JournalRecord::trace(31, "m 10.0.0.4 * 10.0.0.5 d"),
      JournalRecord::trace(kNoSourceOffset, "m 10.0.1.1 10.0.1.2 d"),
      JournalRecord::commit(1, 3, 0xDEADBEEFu),
      JournalRecord::trace(55, "m 10.0.2.1 10.0.2.2 d"),
      JournalRecord::commit(2, 4, 0x12345678u),
  };
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mapit_journal_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    path_ = (dir_ / "delta.jnl").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Writes a fresh journal holding sample_records() and returns its bytes.
  std::string write_sample() {
    fs::remove(path_);
    JournalWriter writer = JournalWriter::open(path_, meta_a());
    for (const JournalRecord& record : sample_records()) {
      writer.append(record);
    }
    writer.sync();
    writer.close();
    return read_file(path_);
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(JournalTest, RoundTripPreservesMetaAndRecords) {
  write_sample();
  const JournalContents contents = read_journal(path_);
  EXPECT_EQ(contents.meta, meta_a());
  EXPECT_EQ(contents.records, sample_records());
  EXPECT_FALSE(contents.torn_tail);
  EXPECT_EQ(contents.durable_size, fs::file_size(path_));
}

TEST_F(JournalTest, ReopenVerifiesIdentityAndAppendsInPlace) {
  write_sample();
  JournalContents replayed;
  JournalWriter writer = JournalWriter::open(path_, meta_a(), &replayed);
  EXPECT_EQ(replayed.records, sample_records());
  writer.append(JournalRecord::trace(99, "m 10.0.3.1 10.0.3.2 d"));
  writer.sync();
  writer.close();
  const JournalContents contents = read_journal(path_);
  ASSERT_EQ(contents.records.size(), sample_records().size() + 1);
  EXPECT_EQ(contents.records.back().line, "m 10.0.3.1 10.0.3.2 d");
}

TEST_F(JournalTest, ForeignMetaIsRejected) {
  write_sample();
  for (int field = 0; field < 4; ++field) {
    CheckpointMeta other = meta_a();
    if (field == 0) other.config_hash ^= 1;
    if (field == 1) other.corpus_fingerprint ^= 1;
    if (field == 2) other.rib_fingerprint ^= 1;
    if (field == 3) other.datasets_fingerprint ^= 1;
    EXPECT_THROW((void)JournalWriter::open(path_, other), JournalError)
        << "meta field " << field;
  }
}

TEST_F(JournalTest, EveryTornTailLengthTruncatesSilently) {
  const std::string full = write_sample();
  const JournalContents whole = read_journal(path_);
  // Chop the file after the header at every possible byte length: each
  // prefix must replay to a prefix of the records — never throw.
  for (std::size_t len = kJournalHeaderSize; len < full.size(); ++len) {
    write_file(path_, full.substr(0, len));
    JournalContents contents;
    ASSERT_NO_THROW(contents = read_journal(path_)) << "length " << len;
    EXPECT_LE(contents.records.size(), whole.records.size());
    EXPECT_EQ(contents.torn_tail, contents.durable_size != len);
    for (std::size_t i = 0; i < contents.records.size(); ++i) {
      EXPECT_EQ(contents.records[i], whole.records[i]) << "length " << len;
    }
    // Opening for append repairs the tear and the writer stays usable.
    JournalContents replayed;
    JournalWriter writer = JournalWriter::open(path_, meta_a(), &replayed);
    EXPECT_FALSE(replayed.torn_tail);
    EXPECT_EQ(fs::file_size(path_), replayed.durable_size);
    writer.append(JournalRecord::commit(9, 9, 9));
    writer.sync();
    writer.close();
    EXPECT_EQ(read_journal(path_).records.size(),
              replayed.records.size() + 1);
  }
}

TEST_F(JournalTest, CompleteButCorruptRecordIsRejected) {
  const std::string full = write_sample();
  // Flip one byte inside the first record's payload: the frame is complete,
  // so this is corruption, not a torn tail.
  std::string corrupt = full;
  corrupt[kJournalHeaderSize + kJournalFrameSize + 9] ^= 0x40;
  write_file(path_, corrupt);
  EXPECT_THROW((void)read_journal(path_), JournalError);

  // Unknown record type (CRC recomputed to isolate the type check is not
  // needed: the type byte is outside the payload CRC).
  corrupt = full;
  corrupt[kJournalHeaderSize + 8] = 0x7F;
  write_file(path_, corrupt);
  EXPECT_THROW((void)read_journal(path_), JournalError);

  // Nonzero reserved frame bytes.
  corrupt = full;
  corrupt[kJournalHeaderSize + 10] = 0x01;
  write_file(path_, corrupt);
  EXPECT_THROW((void)read_journal(path_), JournalError);

  // Absurd payload size: corruption even though the bytes "run out".
  corrupt = full;
  corrupt[kJournalHeaderSize + 3] = 0x7F;  // size ~= 2^30
  write_file(path_, corrupt);
  EXPECT_THROW((void)read_journal(path_), JournalError);
}

TEST_F(JournalTest, HeaderCorruptionIsRejected) {
  const std::string full = write_sample();
  for (const std::size_t at : {std::size_t{0}, std::size_t{8},
                               std::size_t{12}, std::size_t{20},
                               std::size_t{48}, std::size_t{52}}) {
    std::string corrupt = full;
    corrupt[at] ^= 0x01;
    write_file(path_, corrupt);
    EXPECT_THROW((void)read_journal(path_), JournalError) << "byte " << at;
  }
  // A file shorter than the header cannot be a journal at all: the header
  // is created atomically, so a short file is foreign, not torn.
  write_file(path_, full.substr(0, kJournalHeaderSize - 1));
  EXPECT_THROW((void)read_journal(path_), JournalError);
}

TEST_F(JournalTest, MissingFileThrowsButCreationIsClean) {
  EXPECT_THROW((void)read_journal(path_), JournalError);
  JournalWriter writer = JournalWriter::open(path_, meta_a());
  writer.close();
  const JournalContents contents = read_journal(path_);
  EXPECT_TRUE(contents.records.empty());
  EXPECT_EQ(contents.meta, meta_a());
}

/// One full journal session through an Io: create, append half, sync,
/// append the rest, sync, close.
void run_session(const std::string& path, fault::Io& io) {
  JournalContents replayed;
  JournalWriter writer = JournalWriter::open(path, meta_a(), &replayed, io);
  const std::vector<JournalRecord> records = sample_records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    writer.append(records[i]);
    if (i == records.size() / 2 || i + 1 == records.size()) writer.sync();
  }
  writer.close();
}

TEST_F(JournalTest, CrashAtEveryInjectionPointLeavesReplayablePrefix) {
  // Counting pass: every syscall the session issues is an injection point.
  fault::FaultPlan counter;
  run_session(path_, counter);
  ASSERT_EQ(read_journal(path_).records, sample_records());

  const fault::Op kOps[] = {fault::Op::kOpen, fault::Op::kWrite,
                            fault::Op::kFsync, fault::Op::kFtruncate,
                            fault::Op::kRename, fault::Op::kClose};
  int crash_points = 0;
  for (const fault::Op op : kOps) {
    for (std::uint64_t nth = 1; nth <= counter.calls(op); ++nth) {
      fs::remove(path_);
      fault::FaultPlan plan;
      plan.add(fault::Fault{.op = op, .nth = nth, .crash = true});
      EXPECT_THROW(run_session(path_, plan), fault::InjectedCrash)
          << to_string(op) << " call " << nth;
      ++crash_points;
      // After the crash the path holds nothing, or a journal that replays
      // cleanly (possibly via torn-tail truncation on reopen) to a prefix.
      if (!fs::exists(path_)) continue;
      JournalContents replayed;
      JournalWriter writer =
          JournalWriter::open(path_, meta_a(), &replayed);
      const std::vector<JournalRecord> expected = sample_records();
      ASSERT_LE(replayed.records.size(), expected.size());
      for (std::size_t i = 0; i < replayed.records.size(); ++i) {
        EXPECT_EQ(replayed.records[i], expected[i])
            << to_string(op) << " call " << nth;
      }
      writer.close();
    }
  }
  EXPECT_GE(crash_points, 10);
}

TEST_F(JournalTest, ShortWritesStillAppendEverything) {
  // Dribble every write out a few bytes at a time: write_all must loop,
  // and the result must be byte-equivalent to the unthrottled session.
  fault::FaultPlan plan;
  plan.add(fault::Fault{.op = fault::Op::kWrite, .nth = 1,
                        .repeat = 1000, .short_bytes = 5});
  run_session(path_, plan);
  EXPECT_EQ(read_journal(path_).records, sample_records());
}

TEST_F(JournalTest, EnospcSurfacesAsJournalError) {
  fault::FaultPlan plan;
  plan.add(fault::Fault{.op = fault::Op::kWrite, .nth = 3,
                        .inject_errno = ENOSPC});
  EXPECT_THROW(run_session(path_, plan), JournalError);
  // Whatever landed is still a replayable prefix.
  if (fs::exists(path_)) {
    EXPECT_NO_THROW((void)JournalWriter::open(path_, meta_a()));
  }
}

}  // namespace
}  // namespace mapit::core
