// FileTailer's append-only contract: rotation, replacement, and
// truncation of the followed file are DETECTED and reported as a loud,
// distinct SourceRotatedError — never survived silently. A stale offset
// into a rewritten file would fold garbage into the live snapshot, so the
// degraded-mode retry loop deliberately refuses to retry this error; the
// tests here pin the detection itself.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ingest/source.h"

namespace mapit::ingest {
namespace {

namespace fs = std::filesystem;

class SourceRotationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mapit_rotation_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "delta.txt").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_file(const std::string& text) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << text;
  }
  void append_file(const std::string& text) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << text;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(SourceRotationTest, AppendsKeepFlowingWithoutFalsePositives) {
  write_file("a\nb\n");
  FileTailer tailer(path_, 0);
  std::vector<SourceLine> lines;
  // Every poll ends at EOF and therefore runs the rotation check; a file
  // that only ever grows must never trip it.
  EXPECT_EQ(tailer.poll(lines), 2u);
  EXPECT_EQ(tailer.poll(lines), 0u);
  append_file("c\n");
  EXPECT_EQ(tailer.poll(lines), 1u);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2].line, "c");
}

TEST_F(SourceRotationTest, PartialTailLineIsNotMistakenForTruncation) {
  write_file("x\npart");
  FileTailer tailer(path_, 0);
  std::vector<SourceLine> lines;
  EXPECT_EQ(tailer.poll(lines), 1u);  // "part" waits for its newline
  EXPECT_EQ(tailer.poll(lines), 0u);
  append_file("ial\n");
  EXPECT_EQ(tailer.poll(lines), 1u);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1].line, "partial");
}

TEST_F(SourceRotationTest, TruncationThrowsDistinctError) {
  write_file("one\ntwo\nthree\n");
  FileTailer tailer(path_, 0);
  std::vector<SourceLine> lines;
  ASSERT_EQ(tailer.poll(lines), 3u);
  fs::resize_file(path_, 4);  // shrinks below the 14 consumed bytes
  try {
    (void)tailer.poll(lines);
    FAIL() << "expected SourceRotatedError";
  } catch (const SourceRotatedError& error) {
    EXPECT_NE(std::string(error.what()).find("truncated"), std::string::npos)
        << error.what();
  }
}

TEST_F(SourceRotationTest, DeletedFileThrowsDistinctError) {
  write_file("one\n");
  FileTailer tailer(path_, 0);
  std::vector<SourceLine> lines;
  ASSERT_EQ(tailer.poll(lines), 1u);
  fs::remove(path_);
  try {
    (void)tailer.poll(lines);
    FAIL() << "expected SourceRotatedError";
  } catch (const SourceRotatedError& error) {
    EXPECT_NE(std::string(error.what()).find("deleted"), std::string::npos)
        << error.what();
  }
}

TEST_F(SourceRotationTest, LogrotateStyleReplacementThrowsDistinctError) {
  write_file("one\ntwo\n");
  FileTailer tailer(path_, 0);
  std::vector<SourceLine> lines;
  ASSERT_EQ(tailer.poll(lines), 2u);
  // Create the replacement while the original inode is still held open
  // (so the inode number cannot be recycled), then rename over the path —
  // exactly what logrotate's default mode does.
  const std::string fresh = (dir_ / "delta.txt.new").string();
  {
    std::ofstream out(fresh, std::ios::binary);
    out << "one\ntwo\nrewritten history\n";
  }
  fs::rename(fresh, path_);
  try {
    (void)tailer.poll(lines);
    FAIL() << "expected SourceRotatedError";
  } catch (const SourceRotatedError& error) {
    EXPECT_NE(std::string(error.what()).find("different file"),
              std::string::npos)
        << error.what();
  }
}

TEST_F(SourceRotationTest, MissingFileIsNoInputNotAnError) {
  // A follow file that does not exist yet is "no input": the tailer
  // retries the open every poll and only starts the rotation bookkeeping
  // once it has actually held the file.
  FileTailer tailer(path_, 0);
  std::vector<SourceLine> lines;
  EXPECT_EQ(tailer.poll(lines), 0u);
  write_file("late\n");
  EXPECT_EQ(tailer.poll(lines), 1u);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].line, "late");
}

}  // namespace
}  // namespace mapit::ingest
