// Snapshot artifact fault matrix: a crash, ENOSPC, short write, or failed
// rename/fsync at ANY injected syscall of write_snapshot_file must leave
// the destination path holding either the complete old artifact or the
// complete new one — CRC-valid and fully readable — never a torn file.
// This is the test the ISSUE's acceptance criteria pin; tools/ci.sh runs
// it inside the SNAPSHOT_SMOKE stage as well as the FAULT_MATRIX stage.
#include "store/writer.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <string>

#include "fault/plan.h"
#include "net/error.h"
#include "store/reader.h"

namespace mapit::store {
namespace {

namespace fs = std::filesystem;

SnapshotData snapshot_a() {
  SnapshotData data;
  data.inferences.push_back(
      InferenceRecord{0x0A000001u, 0, 0, 0, 0, 100, 200, 3, 4});
  data.links.push_back(LinkRecord{0x0A000001u, 0x0A000002u, 100, 200, 2, 5,
                                  8, 0, {0, 0, 0}});
  data.bgp_prefixes.push_back(PrefixRecord{0x0A000000u, 100, 8, {0, 0, 0}});
  data.mappings.push_back(MappingRecord{0x0A000001u, 300, 1, {0, 0, 0}});
  return data;
}

/// A different, larger snapshot so old/new are distinguishable by CRC and
/// size, and a torn mix of the two cannot masquerade as either.
SnapshotData snapshot_b() {
  SnapshotData data = snapshot_a();
  data.inferences.push_back(
      InferenceRecord{0x0A000002u, 0, 1, 0, 0, 200, 300, 2, 2});
  data.inferences.push_back(
      InferenceRecord{0x0A000003u, 1, 2, kInferenceUncertain, 0, 300, 400,
                      1, 3});
  data.bgp_prefixes.push_back(PrefixRecord{0x14000000u, 200, 8, {0, 0, 0}});
  data.fallback_prefixes.push_back(
      PrefixRecord{0xC0000000u, 999, 4, {0, 0, 0}});
  return data;
}

class SnapshotFaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mapit_snapshot_fault_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    path_ = (dir_ / "snapshot.bin").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Opens + fully validates the destination artifact (magic, size, CRC,
  /// section table) and returns its payload CRC. Any tear throws.
  std::uint32_t destination_crc() {
    const SnapshotReader reader = SnapshotReader::open(path_);
    return reader.payload_crc32();
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(SnapshotFaultMatrixTest, CrashAtEveryInjectionPoint) {
  const WriteInfo old_info = write_snapshot_file(snapshot_a(), path_);

  // Counting pass over a clean rewrite: every syscall it issues is an
  // injection point for the matrix below.
  fault::FaultPlan counter;
  const WriteInfo new_info =
      write_snapshot_file(snapshot_b(), path_, counter);
  ASSERT_NE(old_info.payload_crc32, new_info.payload_crc32);
  ASSERT_NE(old_info.bytes, new_info.bytes);
  ASSERT_EQ(destination_crc(), new_info.payload_crc32);

  const fault::Op kOps[] = {fault::Op::kOpen, fault::Op::kWrite,
                            fault::Op::kFsync, fault::Op::kRename,
                            fault::Op::kClose};
  int crash_points = 0;
  for (const fault::Op op : kOps) {
    for (std::uint64_t nth = 1; nth <= counter.calls(op); ++nth) {
      write_snapshot_file(snapshot_a(), path_);  // reset: destination = old
      fault::FaultPlan plan;
      plan.add(fault::Fault{.op = op, .nth = nth, .crash = true});
      EXPECT_THROW(write_snapshot_file(snapshot_b(), path_, plan),
                   fault::InjectedCrash)
          << to_string(op) << " call " << nth;
      ++crash_points;
      std::uint32_t crc = 0;
      ASSERT_NO_THROW(crc = destination_crc())
          << "torn artifact after crash at " << to_string(op) << " call "
          << nth;
      EXPECT_TRUE(crc == old_info.payload_crc32 ||
                  crc == new_info.payload_crc32)
          << "destination is neither old nor new after crash at "
          << to_string(op) << " call " << nth;
    }
  }
  EXPECT_GE(crash_points, 8);
}

TEST_F(SnapshotFaultMatrixTest, ShortWritesPlusCrashNeverTear) {
  const WriteInfo old_info = write_snapshot_file(snapshot_a(), path_);
  // Dribble the payload out 7 bytes per write, then crash mid-stream: the
  // partial temp file must never reach the destination name.
  for (const std::uint64_t crash_at : {2u, 5u, 9u}) {
    fault::FaultPlan plan;
    plan.add(fault::Fault{.op = fault::Op::kWrite, .nth = 1,
                          .repeat = crash_at - 1, .short_bytes = 7});
    plan.add(fault::Fault{.op = fault::Op::kWrite, .nth = crash_at,
                          .crash = true});
    EXPECT_THROW(write_snapshot_file(snapshot_b(), path_, plan),
                 fault::InjectedCrash);
    std::uint32_t crc = 0;
    ASSERT_NO_THROW(crc = destination_crc()) << "crash at write " << crash_at;
    EXPECT_EQ(crc, old_info.payload_crc32);
  }
}

TEST_F(SnapshotFaultMatrixTest, EnospcAndFailedRenameKeepOldArtifact) {
  const WriteInfo old_info = write_snapshot_file(snapshot_a(), path_);
  struct Case {
    fault::Op op;
    int err;
  };
  for (const Case& c : {Case{fault::Op::kWrite, ENOSPC},
                        Case{fault::Op::kFsync, EIO},
                        Case{fault::Op::kRename, EXDEV}}) {
    fault::FaultPlan plan;
    plan.add(fault::Fault{.op = c.op, .nth = 1, .inject_errno = c.err});
    EXPECT_THROW(write_snapshot_file(snapshot_b(), path_, plan), Error)
        << to_string(c.op);
    EXPECT_EQ(destination_crc(), old_info.payload_crc32) << to_string(c.op);
    // The errno path cleans its temp file: only the artifact remains.
    EXPECT_EQ(std::distance(fs::directory_iterator(dir_),
                            fs::directory_iterator{}),
              1)
        << to_string(c.op);
  }
}

TEST_F(SnapshotFaultMatrixTest, EintrDuringWriteIsInvisible) {
  write_snapshot_file(snapshot_a(), path_);
  fault::FaultPlan plan;
  plan.add(fault::Fault{.op = fault::Op::kWrite, .nth = 1,
                        .inject_errno = EINTR});
  const WriteInfo info = write_snapshot_file(snapshot_b(), path_, plan);
  EXPECT_EQ(destination_crc(), info.payload_crc32);
}

TEST_F(SnapshotFaultMatrixTest, ReaderSurfacesOpenAndStatFailures) {
  write_snapshot_file(snapshot_a(), path_);
  {
    fault::FaultPlan plan;
    plan.add(fault::Fault{.op = fault::Op::kOpen, .nth = 1,
                          .inject_errno = EMFILE});
    EXPECT_THROW((void)SnapshotReader::open(path_, plan), Error);
  }
  {
    fault::FaultPlan plan;
    plan.add(fault::Fault{.op = fault::Op::kFstat, .nth = 1,
                          .inject_errno = EIO});
    EXPECT_THROW((void)SnapshotReader::open(path_, plan), Error);
  }
  // And with the faults consumed, the same path opens fine.
  fault::FaultPlan spent;
  spent.add(fault::Fault{.op = fault::Op::kOpen, .nth = 2,
                         .inject_errno = EMFILE});
  EXPECT_NO_THROW((void)SnapshotReader::open(path_, spent));
}

}  // namespace
}  // namespace mapit::store
