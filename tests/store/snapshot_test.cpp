// Snapshot format round-trip and corruption-rejection tests.
//
// The corruption sweeps are the load-bearing part: every bit flip,
// truncation point, and section-table lie must yield a SnapshotError —
// never a crash, sanitizer report, or silently wrong spans.
#include "store/format.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/error.h"
#include "store/reader.h"
#include "store/writer.h"
#include "test_util.h"

namespace mapit::store {
namespace {

SnapshotData sample_data() {
  SnapshotData data;
  data.inferences.push_back(
      InferenceRecord{0x0A000001u, 0, 0, 0, 0, 100, 200, 3, 4});
  data.inferences.push_back(
      InferenceRecord{0x0A000001u, 1, 1, 0, 0, 100, 300, 2, 4});
  data.inferences.push_back(
      InferenceRecord{0x0A000002u, 0, 2, kInferenceUncertain, 0, 300, 100,
                      1, 2});
  data.links.push_back(LinkRecord{0x0A000001u, 0x0A000002u, 100, 200, 2, 5,
                                  8, 0, {0, 0, 0}});
  data.links.push_back(LinkRecord{0x0A000003u, 0x0A000004u, 100, 300, 1, 3,
                                  4, kLinkViaStub, {0, 0, 0}});
  data.bgp_prefixes.push_back(PrefixRecord{0x0A000000u, 100, 8, {0, 0, 0}});
  data.bgp_prefixes.push_back(PrefixRecord{0x0A000000u, 200, 24, {0, 0, 0}});
  data.fallback_prefixes.push_back(
      PrefixRecord{0xC0000000u, 999, 4, {0, 0, 0}});
  data.mappings.push_back(MappingRecord{0x0A000001u, 300, 1, {0, 0, 0}});
  return data;
}

/// Recomputes and patches payload_crc32 after deliberate tampering, so the
/// tampered image gets past the CRC gate and exercises the later checks.
std::string reseal(std::string bytes) {
  const std::uint32_t crc =
      crc32(bytes.data() + sizeof(SnapshotHeader),
            bytes.size() - sizeof(SnapshotHeader));
  std::memcpy(bytes.data() + offsetof(SnapshotHeader, payload_crc32), &crc,
              sizeof(crc));
  return bytes;
}

void expect_equal(const SnapshotReader& reader, const SnapshotData& data) {
  ASSERT_EQ(reader.inferences().size(), data.inferences.size());
  for (std::size_t i = 0; i < data.inferences.size(); ++i) {
    EXPECT_EQ(std::memcmp(&reader.inferences()[i], &data.inferences[i],
                          sizeof(InferenceRecord)),
              0)
        << "inference " << i;
  }
  ASSERT_EQ(reader.links().size(), data.links.size());
  for (std::size_t i = 0; i < data.links.size(); ++i) {
    EXPECT_EQ(
        std::memcmp(&reader.links()[i], &data.links[i], sizeof(LinkRecord)),
        0)
        << "link " << i;
  }
  ASSERT_EQ(reader.bgp_prefixes().size(), data.bgp_prefixes.size());
  ASSERT_EQ(reader.fallback_prefixes().size(), data.fallback_prefixes.size());
  ASSERT_EQ(reader.mappings().size(), data.mappings.size());
}

TEST(SnapshotFormat, Crc32MatchesKnownVectors) {
  // The classic IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Incremental chaining equals one-shot.
  const std::uint32_t first = crc32("1234", 4);
  EXPECT_EQ(crc32("56789", 5, first), 0xCBF43926u);
}

TEST(SnapshotRoundTrip, FromBytes) {
  const SnapshotData data = sample_data();
  const std::string bytes = serialize_snapshot(data);
  const SnapshotReader reader = SnapshotReader::from_bytes(bytes);
  expect_equal(reader, data);
  EXPECT_EQ(reader.version(), kSnapshotVersion);
  EXPECT_EQ(reader.size_bytes(), bytes.size());
}

TEST(SnapshotRoundTrip, EmptySectionsAreValid) {
  const SnapshotData data;  // all sections empty
  const SnapshotReader reader = SnapshotReader::from_bytes(
      serialize_snapshot(data));
  EXPECT_TRUE(reader.inferences().empty());
  EXPECT_TRUE(reader.links().empty());
  EXPECT_TRUE(reader.mappings().empty());
}

TEST(SnapshotRoundTrip, OpenFile) {
  const SnapshotData data = sample_data();
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "mapit_snapshot_test.bin";
  const WriteInfo info = write_snapshot_file(data, path.string());
  const SnapshotReader reader = SnapshotReader::open(path.string());
  expect_equal(reader, data);
  EXPECT_EQ(reader.size_bytes(), info.bytes);
  EXPECT_EQ(reader.payload_crc32(), info.payload_crc32);
  std::filesystem::remove(path);
}

TEST(SnapshotRoundTrip, SerializationIsByteDeterministic) {
  const SnapshotData data = sample_data();
  EXPECT_EQ(serialize_snapshot(data), serialize_snapshot(data));
}

TEST(SnapshotRoundTrip, PipelineDataRoundTrips) {
  using testutil::MiniWorld;
  MiniWorld world({{"10.0.0.0/8", 100}, {"20.0.0.0/8", 200}},
                  {
                      "10|20.0.0.99|10.0.0.1 10.0.0.5 20.0.0.2 20.0.0.6",
                      "10|20.0.0.99|10.0.0.1 10.0.0.5 20.0.0.2",
                      "10|20.0.0.98|10.0.0.1 10.0.0.5 20.0.0.2",
                  });
  const core::Result result = world.run();
  const SnapshotData data =
      make_snapshot_data(result, world.graph(), world.ip2as());
  ASSERT_EQ(data.inferences.size(),
            result.inferences.size() + result.uncertain.size());
  ASSERT_EQ(data.mappings.size(), result.final_mappings.size());
  const SnapshotReader reader =
      SnapshotReader::from_bytes(serialize_snapshot(data));
  expect_equal(reader, data);
  // Every confident inference survives the record conversion bit-exactly.
  for (const core::Inference& inference : result.inferences) {
    const InferenceRecord record = to_record(inference);
    EXPECT_EQ(record.address, inference.half.address.value());
    EXPECT_EQ(record.router_as, inference.router_as);
    EXPECT_EQ(record.other_as, inference.other_as);
    EXPECT_EQ(record.votes, inference.votes);
    EXPECT_EQ(record.neighbor_count, inference.neighbor_count);
  }
}

TEST(SnapshotWriter, RejectsUnsortedSections) {
  SnapshotData data = sample_data();
  std::swap(data.inferences[0], data.inferences[1]);
  EXPECT_THROW((void)serialize_snapshot(data), mapit::InvariantError);

  data = sample_data();
  std::swap(data.bgp_prefixes[0], data.bgp_prefixes[1]);
  EXPECT_THROW((void)serialize_snapshot(data), mapit::InvariantError);

  data = sample_data();
  data.links.push_back(data.links[0]);  // duplicate key = not strictly sorted
  EXPECT_THROW((void)serialize_snapshot(data), mapit::InvariantError);
}

// ---------------------------------------------------------------------------
// Corruption sweeps.
// ---------------------------------------------------------------------------

TEST(SnapshotCorruption, EveryBitFlipIsRejected) {
  const std::string bytes = serialize_snapshot(sample_data());
  // Header reserved bytes are written as zero and ignored on read, and are
  // deliberately outside the CRC (the CRC covers post-header bytes only) —
  // flips there load fine. Everything else must be rejected.
  const std::size_t reserved_begin = offsetof(SnapshotHeader, reserved);
  const std::size_t reserved_end =
      reserved_begin + sizeof(SnapshotHeader{}.reserved);
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    if (byte >= reserved_begin && byte < reserved_end) continue;
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[byte] = static_cast<char>(
          static_cast<unsigned char>(corrupt[byte]) ^ (1u << bit));
      EXPECT_THROW((void)SnapshotReader::from_bytes(corrupt), SnapshotError)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(SnapshotCorruption, EveryTruncationIsRejected) {
  const std::string bytes = serialize_snapshot(sample_data());
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    EXPECT_THROW(
        (void)SnapshotReader::from_bytes(std::string_view(bytes).substr(
            0, length)),
        SnapshotError)
        << "truncated to " << length;
  }
  // Trailing garbage is equally fatal (file_size pins the exact length).
  EXPECT_THROW((void)SnapshotReader::from_bytes(bytes + "x"), SnapshotError);
}

TEST(SnapshotCorruption, TruncatedFileOnDisk) {
  const SnapshotData data = sample_data();
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "mapit_snapshot_trunc.bin";
  write_snapshot_file(data, path.string());
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_THROW((void)SnapshotReader::open(path.string()), SnapshotError);
  std::filesystem::remove(path);
}

TEST(SnapshotCorruption, WrongMagic) {
  std::string bytes = serialize_snapshot(sample_data());
  bytes[0] = 'X';
  EXPECT_THROW((void)SnapshotReader::from_bytes(bytes), SnapshotError);
}

TEST(SnapshotCorruption, WrongVersion) {
  std::string bytes = serialize_snapshot(sample_data());
  const std::uint32_t version = kSnapshotVersion + 1;
  std::memcpy(bytes.data() + offsetof(SnapshotHeader, version), &version,
              sizeof(version));
  try {
    (void)SnapshotReader::from_bytes(bytes);
    FAIL() << "wrong version accepted";
  } catch (const SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos)
        << error.what();
  }
}

TEST(SnapshotCorruption, WrongEndianness) {
  std::string bytes = serialize_snapshot(sample_data());
  const std::uint32_t swapped = 0x0D0C0B0Au;  // byteswapped kEndianMarker
  std::memcpy(bytes.data() + offsetof(SnapshotHeader, endian), &swapped,
              sizeof(swapped));
  try {
    (void)SnapshotReader::from_bytes(bytes);
    FAIL() << "byteswapped artifact accepted";
  } catch (const SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("byte-order"),
              std::string::npos)
        << error.what();
  }
}

/// Patches one section-table field (resealing the CRC) and expects
/// rejection — the structural checks must hold even for images whose
/// checksum is intact.
void expect_table_tamper_rejected(std::uint64_t entry_field_offset,
                                  std::uint64_t value) {
  std::string bytes = serialize_snapshot(sample_data());
  std::memcpy(bytes.data() + sizeof(SnapshotHeader) + entry_field_offset,
              &value, sizeof(value));
  EXPECT_THROW((void)SnapshotReader::from_bytes(reseal(std::move(bytes))),
               SnapshotError);
}

TEST(SnapshotCorruption, SectionBoundsViolations) {
  // First entry's offset/size/record_count live at fixed offsets within the
  // first SectionEntry (offset 8, size 16, count 24).
  expect_table_tamper_rejected(8, 1u << 30);   // offset beyond the file
  expect_table_tamper_rejected(8, 3);          // offset into the table + odd
  expect_table_tamper_rejected(16, 1u << 30);  // size beyond the file
  expect_table_tamper_rejected(16, 7);         // size not record-granular
  expect_table_tamper_rejected(24, 1000);      // count disagrees with size
}

TEST(SnapshotCorruption, UnknownAndDuplicateSectionIds) {
  // Unknown id in the first entry.
  {
    std::string bytes = serialize_snapshot(sample_data());
    const std::uint32_t bogus = 0xDEADBEEFu;
    std::memcpy(bytes.data() + sizeof(SnapshotHeader), &bogus, sizeof(bogus));
    EXPECT_THROW((void)SnapshotReader::from_bytes(reseal(std::move(bytes))),
                 SnapshotError);
  }
  // Second entry's id duplicated into the first (also leaves one section
  // missing — either check may fire; both reject).
  {
    std::string bytes = serialize_snapshot(sample_data());
    std::uint32_t second_id = 0;
    std::memcpy(&second_id,
                bytes.data() + sizeof(SnapshotHeader) + sizeof(SectionEntry),
                sizeof(second_id));
    std::memcpy(bytes.data() + sizeof(SnapshotHeader), &second_id,
                sizeof(second_id));
    EXPECT_THROW((void)SnapshotReader::from_bytes(reseal(std::move(bytes))),
                 SnapshotError);
  }
}

TEST(SnapshotCorruption, EmptyAndTinyInputs) {
  EXPECT_THROW((void)SnapshotReader::from_bytes(""), SnapshotError);
  EXPECT_THROW((void)SnapshotReader::from_bytes("MAPITSNP"), SnapshotError);
  EXPECT_THROW((void)SnapshotReader::from_bytes(std::string(47, '\0')),
               SnapshotError);
}

TEST(SnapshotCorruption, MissingFileIsAnError) {
  EXPECT_THROW(
      (void)SnapshotReader::open("/nonexistent/mapit_snapshot.bin"),
      mapit::Error);
}

}  // namespace
}  // namespace mapit::store
