// The self-healing contract of `mapit supervise`, pinned against a
// purpose-built flaky child (tests/supervise/flaky_child.cpp):
//
//   * restart backoff is deterministic (base, 2*base, ..., capped) and
//     readable straight off the event report;
//   * the crash-loop breaker abandons a hopeless worker after K exits in
//     the window while the rest of the fleet keeps answering;
//   * a live PID that stops answering HEALTH is SIGKILLed and restarted;
//   * the SIGTERM drain is bounded — a child that ignores SIGTERM is
//     SIGKILLed when drain_s runs out;
//   * fork failures take the same backoff/breaker path as instant exits
//     (via fault::Io injection, no real resource exhaustion needed).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "fault/plan.h"
#include "supervise/supervise.h"

namespace mapit::supervise {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

#ifndef FLAKY_CHILD_PATH
#error "FLAKY_CHILD_PATH must point at the flaky_child helper binary"
#endif

std::vector<std::int64_t> details_of(const SuperviseReport& report,
                                     EventType type,
                                     const std::string& worker) {
  std::vector<std::int64_t> details;
  for (const SuperviseEvent& event : report.events) {
    if (event.type == type && event.worker == worker) {
      details.push_back(event.detail);
    }
  }
  return details;
}

std::size_t count_of(const SuperviseReport& report, EventType type,
                     const std::string& worker) {
  return details_of(report, type, worker).size();
}

long read_counter(const std::string& path) {
  std::ifstream in(path);
  long value = 0;
  in >> value;
  return value;
}

/// Waits until the flaky child's start counter reaches `want` (the test's
/// window into supervisor progress). Generous deadline: sanitizer builds
/// stretch every spawn.
bool wait_for_counter(const std::string& path, long want,
                      std::chrono::seconds deadline = 60s) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (read_counter(path) >= want) return true;
    std::this_thread::sleep_for(20ms);
  }
  return false;
}

/// Grabs a free loopback port the way the tests everywhere else do: bind
/// port 0, remember the kernel's pick, close. The tiny reuse race is
/// acceptable in a test.
int pick_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  ::socklen_t length = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
                    &length) != 0) {
    ::close(fd);
    return -1;
  }
  ::close(fd);
  return static_cast<int>(ntohs(addr.sin_port));
}

/// One HEALTH-shaped round trip against a flaky child in serve mode.
bool probe_ok(int port, std::string* reply = nullptr) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  struct ::timeval timeout{};
  timeout.tv_sec = 2;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  struct ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const char kProbe[] = "HEALTH\n";
  if (::send(fd, kProbe, sizeof(kProbe) - 1, MSG_NOSIGNAL) !=
      static_cast<ssize_t>(sizeof(kProbe) - 1)) {
    ::close(fd);
    return false;
  }
  char buffer[256];
  const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  ::close(fd);
  if (n < 2 || buffer[0] != 'O' || buffer[1] != 'K') return false;
  if (reply != nullptr) reply->assign(buffer, static_cast<std::size_t>(n));
  return true;
}

/// A mutex-guarded std::ostream the supervisor thread can log into while
/// the test thread polls for a line — the only way to observe "breaker
/// tripped" *before* run() returns without a data race.
class SyncLog : public std::streambuf {
 public:
  std::ostream& stream() { return stream_; }

  bool contains(const std::string& needle) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return text_.find(needle) != std::string::npos;
  }

  bool wait_for(const std::string& needle,
                std::chrono::seconds deadline = 60s) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      if (contains(needle)) return true;
      std::this_thread::sleep_for(20ms);
    }
    return false;
  }

 protected:
  int overflow(int ch) override {
    if (ch != traits_type::eof()) {
      const std::lock_guard<std::mutex> lock(mutex_);
      text_.push_back(static_cast<char>(ch));
    }
    return ch;
  }

 private:
  std::mutex mutex_;
  std::string text_;
  std::ostream stream_{this};
};

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mapit_supervise_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string state_path(const std::string& name) const {
    return (dir_ / (name + ".state")).string();
  }

  /// A flaky_child worker spec: crashes `fail_count` times, then serves.
  WorkerSpec flaky(const std::string& name, int fail_count,
                   const std::vector<std::string>& extra = {}) const {
    WorkerSpec spec;
    spec.name = name;
    spec.argv = {FLAKY_CHILD_PATH, state_path(name),
                 std::to_string(fail_count)};
    spec.argv.insert(spec.argv.end(), extra.begin(), extra.end());
    return spec;
  }

  fs::path dir_;
};

// ---------------------------------------------------------------- spec ---

TEST(SpecParserTest, ParsesSettingsAndWorkers) {
  const SuperviseOptions options = parse_spec(
      "# fleet of two\n"
      "set restart-base-ms 20\n"
      "set restart-cap-ms 400\n"
      "set breaker-restarts 4\n"
      "set breaker-window-s 12.5\n"
      "set probe-interval-s 0.5\n"
      "set probe-timeout-s 0.25\n"
      "set probe-misses 2\n"
      "set probe-grace-s 1.5\n"
      "set drain-s 3\n"
      "\n"
      "worker web probe=7101 mapit serve --async --port 7101\n"
      "worker feed mapit ingest --journal j --out s\n");
  EXPECT_EQ(options.restart_base_ms, 20);
  EXPECT_EQ(options.restart_cap_ms, 400);
  EXPECT_EQ(options.breaker_restarts, 4);
  EXPECT_DOUBLE_EQ(options.breaker_window_s, 12.5);
  EXPECT_DOUBLE_EQ(options.probe_interval_s, 0.5);
  EXPECT_DOUBLE_EQ(options.probe_timeout_s, 0.25);
  EXPECT_EQ(options.probe_misses, 2);
  EXPECT_DOUBLE_EQ(options.probe_grace_s, 1.5);
  EXPECT_DOUBLE_EQ(options.drain_s, 3.0);
  ASSERT_EQ(options.workers.size(), 2u);
  EXPECT_EQ(options.workers[0].name, "web");
  EXPECT_EQ(options.workers[0].probe_port, 7101);
  ASSERT_EQ(options.workers[0].argv.size(), 5u);
  EXPECT_EQ(options.workers[0].argv[0], "mapit");
  EXPECT_EQ(options.workers[1].name, "feed");
  EXPECT_EQ(options.workers[1].probe_port, -1);
}

TEST(SpecParserTest, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_spec("set restart-base-ms\n"), SpecError);
  EXPECT_THROW((void)parse_spec("set no-such-knob 5\n"), SpecError);
  EXPECT_THROW((void)parse_spec("set restart-base-ms fast\n"), SpecError);
  EXPECT_THROW((void)parse_spec("worker lonely\n"), SpecError);
  EXPECT_THROW((void)parse_spec("worker w probe=80\n"), SpecError);
  EXPECT_THROW((void)parse_spec("worker w probe=eighty sleep 1\n"),
               SpecError);
  EXPECT_THROW((void)parse_spec("worker twin sleep 1\nworker twin sleep 2\n"),
               SpecError);
  EXPECT_THROW((void)parse_spec("restart now\n"), SpecError);
  // And the error message carries the line number.
  try {
    (void)parse_spec("# fine\nset bogus 1\n");
    FAIL() << "expected SpecError";
  } catch (const SpecError& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

TEST(SpecParserTest, LoadSpecReadsFileAndReportsMissing) {
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("mapit_spec_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string path = (dir / "fleet.spec").string();
  {
    std::ofstream out(path);
    out << "set drain-s 1\nworker w sleep 60\n";
  }
  const SuperviseOptions options = load_spec(path);
  EXPECT_DOUBLE_EQ(options.drain_s, 1.0);
  ASSERT_EQ(options.workers.size(), 1u);
  EXPECT_THROW((void)load_spec((dir / "absent.spec").string()), Error);
  fs::remove_all(dir);
}

// ------------------------------------------------------------- restart ---

TEST_F(SupervisorTest, BackoffScheduleIsDeterministicAndCapped) {
  SuperviseOptions options;
  options.workers.push_back(flaky("w", 3));
  options.restart_base_ms = 20;
  options.restart_cap_ms = 50;  // third restart would be 80 -> clamped
  options.breaker_restarts = 10;
  options.breaker_window_s = 300.0;
  options.drain_s = 2.0;

  std::atomic<bool> stop{false};
  SuperviseReport report;
  std::thread runner([&] {
    ProcessSupervisor supervisor(options);
    report = supervisor.run(&stop);
  });
  // Fourth start is the one that sticks (three crashes, then serve).
  EXPECT_TRUE(wait_for_counter(state_path("w"), 4));
  stop.store(true);
  runner.join();

  EXPECT_EQ(details_of(report, EventType::kRestartScheduled, "w"),
            (std::vector<std::int64_t>{20, 40, 50}));
  EXPECT_EQ(report.restarts, 3u);
  EXPECT_FALSE(report.breaker_tripped);
  EXPECT_EQ(count_of(report, EventType::kStart, "w"), 4u);
  EXPECT_GE(count_of(report, EventType::kExit, "w"), 3u);
  // The run ended through the cascade, not the give-up path.
  EXPECT_EQ(count_of(report, EventType::kStop, ""), 1u);
}

TEST_F(SupervisorTest, BreakerTripsAfterKExitsAndRunReturns) {
  SuperviseOptions options;
  options.workers.push_back(flaky("hopeless", 99));
  options.restart_base_ms = 10;
  options.restart_cap_ms = 1000;
  options.breaker_restarts = 3;
  options.breaker_window_s = 300.0;

  // No stop flag: with its only worker abandoned the run returns by
  // itself — the exact behavior the CLI maps to the crash-loop exit code.
  ProcessSupervisor supervisor(options);
  const SuperviseReport report = supervisor.run(nullptr);

  EXPECT_TRUE(report.breaker_tripped);
  EXPECT_EQ(report.restarts, 2u);
  EXPECT_EQ(count_of(report, EventType::kStart, "hopeless"), 3u);
  EXPECT_EQ(count_of(report, EventType::kExit, "hopeless"), 3u);
  EXPECT_EQ(details_of(report, EventType::kRestartScheduled, "hopeless"),
            (std::vector<std::int64_t>{10, 20}));
  EXPECT_EQ(details_of(report, EventType::kBreakerTrip, "hopeless"),
            (std::vector<std::int64_t>{3}));
  EXPECT_EQ(count_of(report, EventType::kStop, ""), 0u);
}

TEST_F(SupervisorTest, BreakerAbandonsOneWorkerWhileSurvivorKeepsServing) {
  const int port = pick_port();
  ASSERT_GT(port, 0);
  SuperviseOptions options;
  options.workers.push_back(flaky("doomed", 99));
  options.workers.push_back(
      flaky("steady", 0, {"--port", std::to_string(port)}));
  options.restart_base_ms = 10;
  options.restart_cap_ms = 1000;
  options.breaker_restarts = 2;
  options.breaker_window_s = 300.0;
  options.drain_s = 2.0;
  SyncLog log;
  options.log = &log.stream();

  std::atomic<bool> stop{false};
  SuperviseReport report;
  std::thread runner([&] {
    ProcessSupervisor supervisor(options);
    report = supervisor.run(&stop);
  });
  // Wait until the doomed worker's second exit has actually been reaped
  // and the breaker recorded — the start counter alone only proves the
  // second spawn happened, not that the supervisor saw it die.
  EXPECT_TRUE(wait_for_counter(state_path("doomed"), 2));
  EXPECT_TRUE(log.wait_for("breaker tripped for doomed"));
  // The survivor must still answer (retry while it boots).
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  std::string reply;
  bool answered = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (probe_ok(port, &reply)) {
      answered = true;
      break;
    }
    std::this_thread::sleep_for(50ms);
  }
  EXPECT_TRUE(answered);
  EXPECT_EQ(reply, "OK flaky\n");
  stop.store(true);
  runner.join();

  EXPECT_TRUE(report.breaker_tripped);
  EXPECT_EQ(count_of(report, EventType::kBreakerTrip, "doomed"), 1u);
  EXPECT_EQ(count_of(report, EventType::kBreakerTrip, "steady"), 0u);
  EXPECT_EQ(count_of(report, EventType::kStart, "steady"), 1u);
}

// -------------------------------------------------------------- probes ---

TEST_F(SupervisorTest, ProbeKillsWedgedWorkerAndRestartsIt) {
  const int port = pick_port();
  ASSERT_GT(port, 0);
  SuperviseOptions options;
  WorkerSpec wedged =
      flaky("wedged", 0, {"--port", std::to_string(port), "--mute"});
  wedged.probe_port = port;
  options.workers.push_back(std::move(wedged));
  options.restart_base_ms = 10;
  options.restart_cap_ms = 1000;
  options.breaker_restarts = 99;
  options.breaker_window_s = 300.0;
  options.probe_interval_s = 0.1;
  options.probe_timeout_s = 0.2;
  options.probe_misses = 2;
  options.probe_grace_s = 0.1;
  options.drain_s = 2.0;

  std::atomic<bool> stop{false};
  SuperviseReport report;
  std::thread runner([&] {
    ProcessSupervisor supervisor(options);
    report = supervisor.run(&stop);
  });
  // The child binds but never answers; two missed probes must SIGKILL it
  // and the restart brings up start #2 (equally mute — one cycle is
  // enough to pin the mechanism).
  EXPECT_TRUE(wait_for_counter(state_path("wedged"), 2));
  stop.store(true);
  runner.join();

  EXPECT_GE(report.probe_kills, 1u);
  EXPECT_GE(count_of(report, EventType::kProbeKill, "wedged"), 1u);
  EXPECT_GE(report.restarts, 1u);
  EXPECT_FALSE(report.breaker_tripped);
}

// --------------------------------------------------------------- drain ---

TEST_F(SupervisorTest, DrainBoundSigkillsChildrenThatIgnoreSigterm) {
  SuperviseOptions options;
  options.workers.push_back(flaky("stubborn", 0, {"--ignore-term"}));
  options.drain_s = 0.3;

  std::atomic<bool> stop{false};
  SuperviseReport report;
  std::thread runner([&] {
    ProcessSupervisor supervisor(options);
    report = supervisor.run(&stop);
  });
  EXPECT_TRUE(wait_for_counter(state_path("stubborn"), 1));
  // Give the child a beat to install its SIG_IGN before we cascade.
  std::this_thread::sleep_for(200ms);
  stop.store(true);
  runner.join();

  EXPECT_EQ(count_of(report, EventType::kDrainKill, "stubborn"), 1u);
  // The post-drain reap still collects the SIGKILLed child.
  EXPECT_EQ(count_of(report, EventType::kExit, "stubborn"), 1u);
}

// ---------------------------------------------------------- fork fault ---

TEST_F(SupervisorTest, ForkFailuresTakeTheBreakerPathWithoutSpawning) {
  fault::FaultPlan plan;
  plan.add(fault::Fault{.op = fault::Op::kFork,
                        .nth = 1,
                        .repeat = 100,
                        .inject_errno = EAGAIN});
  SuperviseOptions options;
  options.workers.push_back(flaky("unforkable", 0));
  options.restart_base_ms = 1;
  options.restart_cap_ms = 10;
  options.breaker_restarts = 3;
  options.breaker_window_s = 300.0;
  options.io = &plan;

  ProcessSupervisor supervisor(options);
  const SuperviseReport report = supervisor.run(nullptr);

  EXPECT_TRUE(report.breaker_tripped);
  EXPECT_EQ(count_of(report, EventType::kStart, "unforkable"), 0u);
  EXPECT_EQ(count_of(report, EventType::kBreakerTrip, "unforkable"), 1u);
  EXPECT_EQ(read_counter(state_path("unforkable")), 0);
}

}  // namespace
}  // namespace mapit::supervise
