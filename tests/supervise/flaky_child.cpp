// Test helper for the supervision tier: a deliberately unreliable child.
//
//   flaky_child <state-file> <fail-count> [--port P] [--mute] [--ignore-term]
//
// Every start increments a counter persisted in <state-file>; while the
// counter is <= <fail-count> the process exits 1 immediately (a crash
// loop the supervisor must ride out with backoff). Once past the
// threshold it "serves": with --port it answers one "OK flaky" line per
// connection (a HEALTH-shaped endpoint the probe accepts); with --mute it
// binds and listens but never accepts — the live-PID-but-wedged-service
// state the liveness probe exists to catch; with --ignore-term it shrugs
// off SIGTERM so the drain bound's SIGKILL path is reachable. The state
// file doubles as the test's progress signal: polling it reveals how many
// times the supervisor has (re)started us.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: flaky_child <state-file> <fail-count> [--port P] "
                 "[--mute] [--ignore-term]\n");
    return 64;
  }
  const std::string state_path = argv[1];
  const long fail_count = std::strtol(argv[2], nullptr, 10);
  int port = -1;
  bool mute = false;
  bool ignore_term = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--mute") {
      mute = true;
    } else if (arg == "--ignore-term") {
      ignore_term = true;
    } else {
      std::fprintf(stderr, "flaky_child: unknown argument %s\n", arg.c_str());
      return 64;
    }
  }

  long starts = 0;
  {
    std::ifstream in(state_path);
    in >> starts;
  }
  ++starts;
  {
    std::ofstream out(state_path, std::ios::trunc);
    out << starts << "\n";
  }
  if (starts <= fail_count) return 1;

  if (ignore_term) (void)::signal(SIGTERM, SIG_IGN);

  if (port >= 0) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return 2;
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
      return 2;
    }
    if (mute) {
      // Bound but wedged: connections land in the kernel backlog, nothing
      // ever answers. The probe's recv must time out.
      while (true) ::pause();
    }
    while (true) {
      const int conn = ::accept(fd, nullptr, nullptr);
      if (conn < 0) continue;
      char buffer[256];
      (void)::recv(conn, buffer, sizeof(buffer), 0);
      const char kReply[] = "OK flaky\n";
      (void)::send(conn, kReply, sizeof(kReply) - 1, MSG_NOSIGNAL);
      (void)::close(conn);
    }
  }
  while (true) ::pause();
}
