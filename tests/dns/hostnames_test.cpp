// DNS hostname substrate tests: label parsing, the tag classifier
// (including the paper's literal §5.1.2 examples), the synthesizer, and
// the hostname-derived ground-truth pathway.
#include "dns/hostnames.h"

#include <gtest/gtest.h>

#include "topo/generator.h"

namespace mapit::dns {
namespace {

TEST(AsLabel, RoundTrip) {
  EXPECT_EQ(as_label(11537), "as11537");
  EXPECT_EQ(parse_as_label("as11537"), 11537u);
  EXPECT_EQ(parse_as_label("as1"), 1u);
}

TEST(AsLabel, RejectsNonLabels) {
  EXPECT_FALSE(parse_as_label("").has_value());
  EXPECT_FALSE(parse_as_label("as").has_value());
  EXPECT_FALSE(parse_as_label("as0").has_value());   // unknown sentinel
  EXPECT_FALSE(parse_as_label("asx1").has_value());
  EXPECT_FALSE(parse_as_label("cogent").has_value());
  EXPECT_FALSE(parse_as_label("1234").has_value());
}

TEST(ParseHostname, PaperExternalExample) {
  // "cogent-ic-309423-den-bl.c.telia.net": an interconnection tag naming
  // the connected network by name (§5.1.2).
  const ParsedHostname parsed =
      parse_hostname("cogent-ic-309423-den-bl.c.telia.net");
  EXPECT_EQ(parsed.kind, TagKind::kExternal);
  EXPECT_EQ(parsed.peer_label, "cogent");
  EXPECT_FALSE(parsed.peer_asn.has_value());  // named, not numbered
  EXPECT_EQ(parsed.owner_label, "telia");
}

TEST(ParseHostname, PaperInternalExample) {
  // "ae-41-41.ebr1.berlin1.level3.net": bundle naming, no peer tag.
  const ParsedHostname parsed =
      parse_hostname("ae-41-41.ebr1.berlin1.level3.net");
  EXPECT_EQ(parsed.kind, TagKind::kInternal);
  EXPECT_EQ(parsed.owner_label, "level3");
}

TEST(ParseHostname, SynthesizedExternal) {
  const ParsedHostname parsed =
      parse_hostname("as10044-ic-227.chic.as1000.net");
  EXPECT_EQ(parsed.kind, TagKind::kExternal);
  ASSERT_TRUE(parsed.peer_asn.has_value());
  EXPECT_EQ(*parsed.peer_asn, 10044u);
  EXPECT_EQ(parsed.owner_label, "as1000");
}

TEST(ParseHostname, AmbiguousAndGarbage) {
  EXPECT_EQ(parse_hostname("gw17.newy.as1000.net").kind, TagKind::kAmbiguous);
  EXPECT_EQ(parse_hostname("dialup-pool-5.example.net").kind,
            TagKind::kAmbiguous);
  EXPECT_EQ(parse_hostname("").kind, TagKind::kAmbiguous);
  EXPECT_EQ(parse_hostname("localhost").kind, TagKind::kAmbiguous);
  EXPECT_EQ(parse_hostname("-ic-5.x.y.net").kind, TagKind::kAmbiguous);
}

class HostnameOracleTest : public ::testing::Test {
 protected:
  static topo::GeneratorConfig config() {
    topo::GeneratorConfig c;
    c.seed = 61;
    c.tier1_count = 3;
    c.transit_count = 15;
    c.stub_count = 60;
    c.rne_customer_count = 8;
    return c;
  }
  HostnameOracleTest() : net_(topo::Generator(config()).generate()) {}
  topo::Internet net_;
};

TEST_F(HostnameOracleTest, CoversTargetInterfaces) {
  HostnameConfig config;
  config.coverage = 1.0;
  config.ambiguous_prob = 0.0;
  config.stale_prob = 0.0;
  const HostnameOracle oracle(net_, topo::Generator::rne_asn(), config);
  // Every inter-AS link of the target has both endpoints named, and the
  // near-side hostname correctly tags the true peer.
  for (const topo::TrueLink& link : net_.true_links()) {
    if (link.as_a != topo::Generator::rne_asn()) continue;
    const std::string* near = oracle.lookup(link.addr_a);
    ASSERT_NE(near, nullptr);
    const ParsedHostname parsed = parse_hostname(*near);
    EXPECT_EQ(parsed.kind, TagKind::kExternal);
    ASSERT_TRUE(parsed.peer_asn.has_value());
    EXPECT_EQ(*parsed.peer_asn, link.as_b);
    EXPECT_EQ(parsed.owner_label, as_label(link.as_a));
  }
}

TEST_F(HostnameOracleTest, CoverageControlsResolvability) {
  HostnameConfig half;
  half.coverage = 0.5;
  const HostnameOracle partial(net_, topo::Generator::tier1_a(), half);
  HostnameConfig full;
  full.coverage = 1.0;
  const HostnameOracle complete(net_, topo::Generator::tier1_a(), full);
  EXPECT_LT(partial.hostnames().size(), complete.hostnames().size());
  EXPECT_GT(partial.hostnames().size(), 0u);
}

TEST_F(HostnameOracleTest, DeterministicPerSeed) {
  const HostnameOracle a(net_, topo::Generator::tier1_a(), HostnameConfig{});
  const HostnameOracle b(net_, topo::Generator::tier1_a(), HostnameConfig{});
  EXPECT_EQ(a.hostnames(), b.hostnames());
}

TEST_F(HostnameOracleTest, GroundTruthFromCleanHostnamesMatchesExact) {
  HostnameConfig clean;
  clean.coverage = 1.0;
  clean.ambiguous_prob = 0.0;
  clean.stale_prob = 0.0;
  const HostnameOracle oracle(net_, topo::Generator::rne_asn(), clean);
  const eval::AsGroundTruth parsed = ground_truth_from_hostnames(net_, oracle);
  const eval::AsGroundTruth exact =
      eval::AsGroundTruth::exact(net_, topo::Generator::rne_asn());

  EXPECT_FALSE(parsed.is_exact());
  ASSERT_EQ(parsed.links().size(), exact.links().size());
  for (const eval::LinkTruth& link : parsed.links()) {
    EXPECT_EQ(link.recorded_remote, link.remote);
    ASSERT_NE(exact.link_of(link.addr_a), nullptr);
  }
  // Every hostname-internal interface is truly internal.
  for (const net::Ipv4Address address : parsed.internal()) {
    EXPECT_TRUE(exact.internal().contains(address));
  }
  EXPECT_GT(parsed.internal().size(), 0u);
}

TEST_F(HostnameOracleTest, NoiseShrinksAndPollutesTheDataset) {
  HostnameConfig noisy;
  noisy.coverage = 0.7;
  noisy.ambiguous_prob = 0.1;
  noisy.stale_prob = 0.3;
  const HostnameOracle oracle(net_, topo::Generator::tier1_a(), noisy);
  const eval::AsGroundTruth parsed = ground_truth_from_hostnames(net_, oracle);
  const eval::AsGroundTruth exact =
      eval::AsGroundTruth::exact(net_, topo::Generator::tier1_a());
  EXPECT_LT(parsed.links().size(), exact.links().size());
  std::size_t stale = 0;
  for (const eval::LinkTruth& link : parsed.links()) {
    if (link.recorded_remote != link.remote) ++stale;
  }
  EXPECT_GT(stale, 0u);
}

}  // namespace
}  // namespace mapit::dns
