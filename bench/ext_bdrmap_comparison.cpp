// Extension experiment: MAP-IT vs bdrmap-lite (the paper's §6 future work).
//
// bdrmap infers the borders of the network hosting the vantage points;
// MAP-IT infers inter-AS link interfaces for every network in the corpus.
// Expected shape: on the VP-hosting network both are precise and bdrmap is
// competitive; on networks without vantage points bdrmap can only see the
// links they share with the host, while MAP-IT's coverage is unchanged.
#include <cstdio>

#include "baselines/bdrmap_lite.h"
#include "bench/bench_util.h"
#include "route/as_routing.h"
#include "route/forwarder.h"
#include "tracesim/simulator.h"

int main() {
  using namespace mapit;
  benchutil::print_header(
      "Extension: MAP-IT vs bdrmap-lite (vantage-point restriction)");

  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::standard());

  // Recover monitor placement to find the host network's vantage points.
  route::AsRouting routing(experiment->internet().true_relationships());
  route::Forwarder forwarder(experiment->internet(), routing);
  tracesim::TracerouteSimulator simulator(experiment->internet(), forwarder,
                                          experiment->config().simulation);
  const asdata::Asn host = topo::Generator::rne_asn();
  std::vector<trace::MonitorId> host_monitors;
  for (const tracesim::Monitor& monitor : simulator.monitors()) {
    if (monitor.asn == host) host_monitors.push_back(monitor.id);
  }
  std::printf("vantage-point network: AS%u (%zu monitors)\n\n", host,
              host_monitors.size());

  core::Options options;
  options.f = 0.5;
  const baselines::Claims mapit_claims =
      baselines::claims_from_result(experiment->run_mapit(options));
  const baselines::Claims bdrmap_claims = baselines::bdrmap_lite(
      experiment->corpus(), host_monitors, host, experiment->ip2as(),
      experiment->relationships(), experiment->orgs());

  std::printf("claims: MAP-IT %zu (all networks), bdrmap-lite %zu (host only)\n\n",
              mapit_claims.size(), bdrmap_claims.size());

  for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
    const benchutil::Score ours =
        benchutil::score_target(*experiment, target, mapit_claims);
    const benchutil::Score theirs =
        benchutil::score_target(*experiment, target, bdrmap_claims);
    benchutil::print_score_row("MAP-IT", target, ours);
    benchutil::print_score_row("bdrmap-lite", target, theirs);
    std::printf("\n");
  }

  std::printf("expected shape: comparable precision on AS%u; bdrmap-lite recall\n"
              "collapses on the tier-1s because they host no vantage point —\n"
              "the restriction §2 highlights and MAP-IT removes.\n",
              host);
  return 0;
}
