// Shared helpers for the reproduction bench binaries.
//
// Each binary regenerates one table or figure from the paper's §5 over the
// synthetic corpus and prints the same rows/series the paper reports.
// Everything is deterministic for a fixed ExperimentConfig.
#pragma once

#include <cstdio>
#include <string>

#include "baselines/claims.h"
#include "eval/experiment.h"

namespace mapit::benchutil {

/// Display names for the designated evaluation ASes, mirroring §5.1:
/// the exact-ground-truth R&E network and the two hostname-verified tier-1s.
inline const char* target_name(asdata::Asn target) {
  if (target == topo::Generator::rne_asn()) return "I2";
  if (target == topo::Generator::tier1_a()) return "L3";
  if (target == topo::Generator::tier1_b()) return "TS";
  return "??";
}

struct Score {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;
  double precision = 1.0;
  double recall = 1.0;
};

/// Verifies a claim set against one target's ground truth.
inline Score score_target(const eval::Experiment& experiment,
                          asdata::Asn target,
                          const baselines::Claims& claims) {
  const eval::AsGroundTruth truth = experiment.ground_truth(target);
  const eval::Verification v = experiment.evaluator().verify(truth, claims);
  return Score{v.total.tp, v.total.fp, v.total.fn, v.total.precision(),
               v.total.recall()};
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_score_row(const char* label, asdata::Asn target,
                            const Score& score) {
  std::printf("%-24s %-3s  TP=%5zu  FP=%5zu  FN=%5zu  precision=%6.1f%%  recall=%6.1f%%\n",
              label, target_name(target), score.tp, score.fp, score.fn,
              100.0 * score.precision, 100.0 * score.recall);
}

}  // namespace mapit::benchutil
