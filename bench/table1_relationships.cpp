// Regenerates Table 1: MAP-IT's inferences at f=0.5 broken down by the
// business relationship of the ASes sharing each link (ISP transit / peer /
// stub transit), for each verification network.
//
// Expected shape (paper §5.4): near-perfect precision on the exact-truth
// network across classes; a precision dip on tier-1 peering links (errors
// on interfaces adjacent to the true link); high stub-transit recall thanks
// to the stub heuristic; lower ISP-transit recall (single-address ISP
// neighbour sets are not trusted).
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace mapit;
  benchutil::print_header(
      "Table 1: inferences by AS relationship (f = 0.5)");

  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::standard());
  core::Options options;
  options.f = 0.5;
  const core::Result result = experiment->run_mapit(options);
  const baselines::Claims claims = baselines::claims_from_result(result);

  const asdata::LinkClass classes[] = {asdata::LinkClass::kIspTransit,
                                       asdata::LinkClass::kPeer,
                                       asdata::LinkClass::kStubTransit};

  std::printf("%-14s %-3s %6s %6s %6s %12s %9s\n", "class", "net", "TP", "FP",
              "FN", "precision%", "recall%");
  eval::Metrics grand;
  for (asdata::LinkClass cls : classes) {
    for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
      const eval::AsGroundTruth truth = experiment->ground_truth(target);
      const eval::Verification v = experiment->evaluator().verify(truth, claims);
      auto it = v.by_class.find(cls);
      const eval::Metrics m =
          it == v.by_class.end() ? eval::Metrics{} : it->second;
      std::printf("%-14s %-3s %6zu %6zu %6zu %12.1f %9.1f\n",
                  asdata::to_string(cls), benchutil::target_name(target), m.tp,
                  m.fp, m.fn, 100.0 * m.precision(), 100.0 * m.recall());
    }
  }
  std::printf("%-14s\n", "Total");
  for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
    const benchutil::Score s =
        benchutil::score_target(*experiment, target, claims);
    std::printf("%-14s %-3s %6zu %6zu %6zu %12.1f %9.1f\n", "",
                benchutil::target_name(target), s.tp, s.fp, s.fn,
                100.0 * s.precision, 100.0 * s.recall);
  }

  std::printf("\npaper anchors (Table 1 totals): I2 100.0/96.9, L3 94.7/92.0, TS 95.6/86.2\n");
  return 0;
}
