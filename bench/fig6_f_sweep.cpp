// Regenerates Figure 6: the impact of the threshold parameter f on
// precision and recall for the three verification networks, sweeping
// f in {0.0, 0.1, ..., 1.0}.
//
// Expected shape (paper §5.3): tier-1 precision roughly flat; exact-truth
// (I2) precision improves toward f=0.5 and degrades at f>=0.9; recall flat
// for low f and sharply lower at high f.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace mapit;
  benchutil::print_header("Figure 6: the impact of f (precision/recall vs f)");

  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::standard());

  std::printf("%4s ", "f");
  for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
    std::printf("| %s P%%    R%%   ", benchutil::target_name(target));
  }
  std::printf("\n");

  for (int step = 0; step <= 10; ++step) {
    core::Options options;
    options.f = 0.1 * step;
    const core::Result result = experiment->run_mapit(options);
    const baselines::Claims claims = baselines::claims_from_result(result);
    std::printf("%4.1f ", options.f);
    for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
      const benchutil::Score score =
          benchutil::score_target(*experiment, target, claims);
      std::printf("| %6.1f %6.1f ", 100.0 * score.precision,
                  100.0 * score.recall);
    }
    std::printf("\n");
  }

  std::printf("\npaper anchors: I2 precision 100%% at f=0.5, sharp drop at f>=0.9;\n"
              "recall mostly flat for low f, decreasing for high f.\n");
  return 0;
}
