// Regenerates Figures 8a/8b: recall and precision of MAP-IT (f = 0.5)
// against the existing approaches the paper compares to:
//
//   Simple      - first address in a new AS is the link interface
//   Convention  - Simple + provider-address-space convention for transit
//   ITDK-Kapar  - router graph from aggressive alias resolution
//   ITDK-MIDAR  - router graph from conservative alias resolution
//
// Expected shape (paper §5.6): MAP-IT dominates every baseline on
// precision for all three networks; ITDK-MIDAR is the best baseline but
// far below MAP-IT; Simple/Convention suffer both low precision and (for
// networks violating addressing conventions) low recall.
#include <cstdio>

#include "baselines/itdk.h"
#include "baselines/simple.h"
#include "bench/bench_util.h"

int main() {
  using namespace mapit;
  benchutil::print_header(
      "Figures 8a/8b: MAP-IT vs existing approaches (f = 0.5)");

  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::standard());

  core::Options options;
  options.f = 0.5;
  const core::Result result = experiment->run_mapit(options);

  struct Engine {
    const char* name;
    baselines::Claims claims;
  };
  const Engine engines[] = {
      {"Simple",
       baselines::simple_heuristic(experiment->corpus(), experiment->ip2as())},
      {"Convention",
       baselines::convention_heuristic(experiment->corpus(),
                                       experiment->ip2as(),
                                       experiment->relationships())},
      {"ITDK-Kapar",
       baselines::itdk_router_graph(experiment->corpus(),
                                    experiment->internet(),
                                    experiment->ip2as(),
                                    baselines::AliasConfig::kapar())},
      {"ITDK-MIDAR",
       baselines::itdk_router_graph(experiment->corpus(),
                                    experiment->internet(),
                                    experiment->ip2as(),
                                    baselines::AliasConfig::midar())},
      {"MAP-IT", baselines::claims_from_result(result)},
  };

  for (const Engine& engine : engines) {
    for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
      const benchutil::Score score =
          benchutil::score_target(*experiment, target, engine.claims);
      benchutil::print_score_row(engine.name, target, score);
    }
    std::printf("\n");
  }

  std::printf("paper anchors: ITDK-MIDAR precision 52.2%% (I2), 67.3%% (L3), 43.4%% (TS);\n"
              "MAP-IT 100%%/94.7%%/95.6%% — MAP-IT should dominate every baseline.\n");
  return 0;
}
