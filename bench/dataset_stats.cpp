// Regenerates the corpus statistics the paper reports in §4.1-§4.3 and §5:
//   - fraction of traces discarded for interface cycles (paper: 2.7%)
//   - fraction of distinct addresses retained after sanitization (89.1%)
//   - fraction of interfaces numbered from /31 prefixes (40.4%)
//   - addresses adjacent to at least one other address
//   - interfaces with |N_F| > 1 and |N_B| > 1 (449,602 / 1,139,087)
//   - interfaces with the same address in both Ns (0.3%)
//   - IP2AS coverage of usable interfaces (99.2%)
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace mapit;
  benchutil::print_header(
      "Dataset statistics (paper §4.1-§4.3, §5)  [synthetic corpus, seed 42]");

  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::standard());
  const trace::SanitizeStats& ss = experiment->sanitize_stats();
  const graph::GraphStats gs = experiment->graph().stats();

  std::printf("traces probed                        : %zu\n", ss.input_traces);
  std::printf("traces discarded (interface cycles)  : %zu (%.2f%%)   [paper: 2.7%%]\n",
              ss.discarded_traces, 100.0 * ss.discard_fraction());
  std::printf("hops removed for quoted TTL=0        : %zu\n",
              ss.removed_ttl0_hops);
  std::printf("distinct addresses before/after      : %zu / %zu (%.1f%% retained)   [paper: 89.1%%]\n",
              ss.input_addresses, ss.retained_addresses,
              100.0 * ss.address_retention());

  const auto adjacent = experiment->corpus().adjacent_addresses();
  std::printf("addresses adjacent to another address: %zu\n", adjacent.size());
  std::printf("interfaces numbered from /31         : %.1f%%   [paper: 40.4%%]\n",
              100.0 * gs.slash31_fraction);
  std::printf("interfaces with |N_F| > 1            : %zu\n", gs.forward_multi);
  std::printf("interfaces with |N_B| > 1            : %zu\n", gs.backward_multi);
  std::printf("interfaces with overlap in both Ns   : %zu (%.2f%%)   [paper: 0.3%%]\n",
              gs.both_directions_overlap, 100.0 * gs.overlap_fraction());

  const double coverage = experiment->ip2as().coverage(adjacent);
  std::printf("IP2AS coverage of usable interfaces  : %.1f%%   [paper: 99.2%%]\n",
              100.0 * coverage);

  const tracesim::SimulatorStats& sim = experiment->simulator_stats();
  std::printf("\nsimulator: %zu traces (%zu unreachable pairs, %zu load-balanced, %zu flapped)\n",
              sim.traces, sim.unreachable, sim.lb_traces, sim.flapped_traces);
  return 0;
}
