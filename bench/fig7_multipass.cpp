// Regenerates Figure 7: the contribution of each algorithm stage to
// precision and recall, using the engine's per-stage snapshots:
//
//   Direct  - after the first direct-inference pass (original IP2AS only)
//   P2P     - after resolving point-to-point (dual-inference) violations
//   Inverse - after removing adjacent inverse inferences
//   Add     - after the initial add step converges (multipass refinement)
//   Iter k  - after the k-th full add+remove iteration
//   Stub    - after the low-visibility/NAT stub heuristic
//
// Expected shape (paper §5.5): low initial precision on the exact-truth
// network (43.8% in the paper), a large jump from inverse-inference
// removal, further refinement from extra passes/iterations, and a visible
// stub-heuristic recall boost for networks with many stub customers.
#include <cstdio>

#include "baselines/claims.h"
#include "bench/bench_util.h"

namespace {

mapit::baselines::Claims claims_from_snapshot(
    const mapit::core::Snapshot& snapshot) {
  mapit::baselines::Claims claims;
  for (const mapit::core::Inference& inference : snapshot.inferences) {
    if (!inference.complete()) continue;
    if (inference.kind == mapit::core::InferenceKind::kIndirect) continue;
    claims.push_back(mapit::baselines::make_claim(
        inference.half.address, inference.router_as, inference.other_as));
  }
  mapit::baselines::normalize(claims);
  return claims;
}

}  // namespace

int main() {
  using namespace mapit;
  benchutil::print_header(
      "Figure 7: the impact of each step on the results (f = 0.5)");

  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::standard());
  core::Options options;
  options.f = 0.5;
  options.capture_snapshots = true;
  const core::Result result = experiment->run_mapit(options);

  std::printf("%-10s ", "stage");
  for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
    std::printf("| %s P%%    R%%   ", benchutil::target_name(target));
  }
  std::printf("\n");

  for (const core::Snapshot& snapshot : result.snapshots) {
    const baselines::Claims claims = claims_from_snapshot(snapshot);
    std::printf("%-10s ", snapshot.label.c_str());
    for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
      const benchutil::Score score =
          benchutil::score_target(*experiment, target, claims);
      std::printf("| %6.1f %6.1f ", 100.0 * score.precision,
                  100.0 * score.recall);
    }
    std::printf("\n");
  }

  std::printf("\npaper anchors: I2 precision starts at 43.8%% after Direct, exceeds 92%%\n"
              "after Inverse for all networks, and the Stub step lifts recall sharply\n"
              "for the network with many stub customers.\n");
  return 0;
}
