// Extension experiment: how vantage-point count drives MAP-IT's recall.
//
// §5.4 attributes the missed ISP-transit links to interfaces whose
// neighbour sets contain a single address, and suggests "targeting the
// links with additional traces" as the remedy. This bench quantifies that:
// the same synthetic Internet probed from 5 / 10 / 20 / 40 monitors,
// everything else fixed. Recall should rise with monitor count while
// precision stays flat — visibility limits coverage, not correctness.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace mapit;
  benchutil::print_header(
      "Extension: recall vs. vantage-point count (f = 0.5)");

  std::printf("%8s ", "monitors");
  for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
    std::printf("| %s P%%    R%%   ", benchutil::target_name(target));
  }
  std::printf("| traces\n");

  for (int monitors : {5, 10, 20, 40}) {
    eval::ExperimentConfig config = eval::ExperimentConfig::standard();
    config.simulation.monitor_count = monitors;
    const auto experiment = eval::Experiment::build(config);
    core::Options options;
    options.f = 0.5;
    const core::Result result = experiment->run_mapit(options);
    const baselines::Claims claims = baselines::claims_from_result(result);
    std::printf("%8d ", monitors);
    for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
      const benchutil::Score score =
          benchutil::score_target(*experiment, target, claims);
      std::printf("| %6.1f %6.1f ", 100.0 * score.precision,
                  100.0 * score.recall);
    }
    std::printf("| %zu\n", experiment->corpus().size());
  }

  std::printf("\nexpected shape: recall rises with monitor count (richer neighbour\n"
              "sets); precision stays in the same band throughout.\n");
  return 0;
}
