// Extension experiment: verification through the full hostname pathway.
//
// The paper (§5.1.2) builds its tier-1 ground truth by resolving DNS
// hostnames and manually interpreting their tags. This bench runs that
// pipeline end-to-end — synthesize hostnames for each verification
// network's interfaces, *parse* them back, assemble the dataset from the
// parsed tags — and scores MAP-IT against both the parsed dataset and the
// directly modelled approximate dataset. The two verdicts should agree
// closely; the residual differences quantify what hostname noise (missing,
// ambiguous, stale tags) does to the verdict, which the paper can only
// describe qualitatively.
#include <cstdio>

#include "bench/bench_util.h"
#include "dns/hostnames.h"

int main() {
  using namespace mapit;
  benchutil::print_header(
      "Extension: verification through parsed DNS hostnames (f = 0.5)");

  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::standard());
  core::Options options;
  options.f = 0.5;
  const core::Result result = experiment->run_mapit(options);
  const baselines::Claims claims = baselines::claims_from_result(result);

  std::printf("%-3s %-22s %6s %6s %6s %12s %9s\n", "net", "dataset", "TP",
              "FP", "FN", "precision%", "recall%");
  for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
    // (a) the modelled approximate dataset (what the main benches use)
    const benchutil::Score modelled =
        benchutil::score_target(*experiment, target, claims);
    std::printf("%-3s %-22s %6zu %6zu %6zu %12.1f %9.1f\n",
                benchutil::target_name(target), "modelled hostnames",
                modelled.tp, modelled.fp, modelled.fn,
                100.0 * modelled.precision, 100.0 * modelled.recall);

    // (b) the parsed pathway: synthesize -> resolve -> parse -> assemble
    dns::HostnameConfig config;
    config.coverage = experiment->config().hostname_coverage;
    config.stale_prob = experiment->config().hostname_stale_prob;
    config.seed = experiment->config().dataset_seed;
    const dns::HostnameOracle oracle(experiment->internet(), target, config);
    const eval::AsGroundTruth parsed =
        dns::ground_truth_from_hostnames(experiment->internet(), oracle);
    const eval::Verification v = experiment->evaluator().verify(parsed, claims);
    std::printf("%-3s %-22s %6zu %6zu %6zu %12.1f %9.1f   (%zu hostnames, %zu links in dataset)\n",
                benchutil::target_name(target), "parsed hostnames",
                v.total.tp, v.total.fp, v.total.fn,
                100.0 * v.total.precision(), 100.0 * v.total.recall(),
                oracle.hostnames().size(), parsed.links().size());
  }
  std::printf("\nthe two pathways should agree within a few links on every row.\n");
  return 0;
}
