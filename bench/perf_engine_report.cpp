// Engine wall-time report: runs the MAP-IT engine on the standard (and
// small) experiment configurations, times each run, and emits a JSON
// summary suitable for checking into the repo as a bench trajectory point
// (BENCH_engine.json).
//
//   perf_engine_report [--out FILE] [--dump FILE] [--reps N]
//                      [--baseline-ms X] [--baseline-small-ms X]
//                      [--threads LIST]
//
// --dump writes the standard run's inference list in the result_io text
// format, for byte-identical equivalence checks across engine rewrites.
// --baseline-ms embeds a previously measured seed timing so the JSON
// carries before/after numbers side by side.
// --threads takes a comma-separated worker-count list (default "1,2,4,8")
// and emits a thread_scaling table of standard-run timings; the report
// also records hardware_threads so scaling numbers can be judged against
// the cores actually available, and an explicit `scaling_valid` caveat
// that is false whenever the machine has fewer cores than the widest
// measured thread count (oversubscribed timings measure scheduling, not
// scaling — do not read speedup_vs_1 from such a report).
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/engine.h"
#include "core/result_io.h"
#include "eval/experiment.h"

namespace {

using namespace mapit;

struct Timing {
  double best_ms = 0.0;
  double mean_ms = 0.0;
  core::Result result;
};

Timing time_engine(const eval::Experiment& experiment, int reps,
                   unsigned threads = 1) {
  Timing timing;
  core::Options options;
  options.f = 0.5;
  options.threads = threads;
  double total = 0.0;
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    core::Result result = experiment.run_mapit(options);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    total += ms;
    if (i == 0 || ms < timing.best_ms) timing.best_ms = ms;
    if (i == 0) timing.result = std::move(result);
  }
  timing.mean_ms = total / reps;
  return timing;
}

/// Cost of checkpointing at EVERY run boundary (the worst case; the CLI's
/// default --checkpoint-interval throttle writes far less often). One
/// "write" is the full save_state() serialization plus the crash-safe
/// atomic file replace — everything a boundary pays.
struct CheckpointCost {
  int boundaries = 0;
  std::size_t state_bytes = 0;
  double write_mean_ms = 0.0;        ///< per-boundary save+write cost
  double pass_mean_ms = 0.0;         ///< per-boundary engine work between writes
  double write_pct_of_pass = 0.0;    ///< raw worst case: a write at EVERY pass
  /// Steady-state overhead under the CLI's default --checkpoint-interval
  /// throttle (one write per interval of run time). This is the figure the
  /// <5% acceptance bound applies to; the raw per-pass percentage above is
  /// fsync-bound and only paid with --checkpoint-interval 0.
  double overhead_pct = 0.0;
};

/// Mirrors the mapit CLI's default --checkpoint-interval.
constexpr double kDefaultCheckpointIntervalMs = 30 * 1000.0;

CheckpointCost measure_checkpoint_overhead(const eval::Experiment& exp,
                                           int reps) {
  core::Options options;
  options.f = 0.5;
  options.threads = 1;
  core::Engine engine(exp.graph(), exp.ip2as(), exp.orgs(),
                      exp.relationships(), options);
  const auto dir = std::filesystem::temp_directory_path() /
                   "mapit_bench_checkpoint";
  std::filesystem::create_directories(dir);
  const std::string path = core::checkpoint_path(dir.string());

  CheckpointCost best;
  for (int rep = 0; rep < reps; ++rep) {
    CheckpointCost cost;
    double write_total_ms = 0.0;
    core::RunControl control;
    control.on_boundary = [&](core::RunBoundary boundary, int iterations) {
      const auto start = std::chrono::steady_clock::now();
      core::Checkpoint ckpt;
      ckpt.meta.config_hash = core::config_hash(options);
      ckpt.boundary = boundary;
      ckpt.iterations_done = iterations;
      ckpt.engine_state = engine.save_state();
      core::write_checkpoint(path, ckpt);
      const auto stop = std::chrono::steady_clock::now();
      write_total_ms +=
          std::chrono::duration<double, std::milli>(stop - start).count();
      cost.state_bytes = ckpt.engine_state.size();
      ++cost.boundaries;
      return true;
    };
    const auto start = std::chrono::steady_clock::now();
    const core::RunOutcome outcome = engine.run_controlled(control);
    const auto stop = std::chrono::steady_clock::now();
    if (!outcome.completed() || cost.boundaries == 0) continue;
    const double run_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    cost.write_mean_ms = write_total_ms / cost.boundaries;
    cost.pass_mean_ms = (run_ms - write_total_ms) / cost.boundaries;
    cost.write_pct_of_pass =
        cost.pass_mean_ms > 0.0
            ? 100.0 * cost.write_mean_ms / cost.pass_mean_ms
            : 0.0;
    cost.overhead_pct =
        100.0 * cost.write_mean_ms / kDefaultCheckpointIntervalMs;
    if (rep == 0 || cost.write_mean_ms < best.write_mean_ms) best = cost;
  }
  std::filesystem::remove_all(dir);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_engine.json";
  std::string dump_path;
  int reps = 5;
  double baseline_ms = -1.0;
  double baseline_small_ms = -1.0;
  std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--dump") {
      dump_path = next();
    } else if (arg == "--reps") {
      reps = std::stoi(next());
    } else if (arg == "--baseline-ms") {
      baseline_ms = std::stod(next());
    } else if (arg == "--baseline-small-ms") {
      baseline_small_ms = std::stod(next());
    } else if (arg == "--threads") {
      thread_counts.clear();
      std::istringstream list(next());
      for (std::string item; std::getline(list, item, ',');) {
        thread_counts.push_back(static_cast<unsigned>(std::stoul(item)));
      }
      if (thread_counts.empty()) {
        std::cerr << "--threads needs a non-empty list\n";
        return 2;
      }
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  std::cerr << "building standard experiment...\n";
  const auto standard =
      eval::Experiment::build(eval::ExperimentConfig::standard());
  std::cerr << "building small experiment...\n";
  const auto small = eval::Experiment::build(eval::ExperimentConfig::small());

  std::cerr << "timing engine (" << reps << " reps)...\n";
  const Timing std_timing = time_engine(*standard, reps);
  const Timing small_timing = time_engine(*small, reps);

  struct ScalingPoint {
    unsigned threads;
    Timing timing;
  };
  std::vector<ScalingPoint> scaling;
  for (unsigned threads : thread_counts) {
    std::cerr << "timing engine with " << threads << " thread(s)...\n";
    scaling.push_back({threads, time_engine(*standard, reps, threads)});
    if (scaling.back().timing.result.inferences.size() !=
        std_timing.result.inferences.size()) {
      std::cerr << "inference count diverged at threads=" << threads << "\n";
      return 1;
    }
  }

  if (!dump_path.empty()) {
    std::ofstream dump(dump_path);
    core::write_inferences(dump, std_timing.result.inferences);
  }

  std::cerr << "timing checkpoint writes at every boundary...\n";
  const CheckpointCost ckpt = measure_checkpoint_overhead(*standard, reps);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"benchmark\": \"BM_MapItEngineStandard\",\n"
      << "  \"reps\": " << reps << ",\n";
  if (baseline_ms > 0.0) {
    out << "  \"seed_standard_ms\": " << baseline_ms << ",\n";
  }
  if (baseline_small_ms > 0.0) {
    out << "  \"seed_small_ms\": " << baseline_small_ms << ",\n";
  }
  out << "  \"standard_best_ms\": " << std_timing.best_ms << ",\n"
      << "  \"standard_mean_ms\": " << std_timing.mean_ms << ",\n"
      << "  \"small_best_ms\": " << small_timing.best_ms << ",\n"
      << "  \"small_mean_ms\": " << small_timing.mean_ms << ",\n";
  if (baseline_ms > 0.0) {
    out << "  \"standard_speedup\": " << baseline_ms / std_timing.best_ms
        << ",\n";
  }
  unsigned max_threads_measured = 0;
  for (const ScalingPoint& point : scaling) {
    max_threads_measured = std::max(max_threads_measured, point.threads);
  }
  const bool scaling_valid =
      std::thread::hardware_concurrency() >= max_threads_measured;
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"scaling_valid\": " << (scaling_valid ? "true" : "false")
      << ",\n"
      << "  \"thread_scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalingPoint& point = scaling[i];
    out << "    {\"threads\": " << point.threads << ", \"best_ms\": "
        << point.timing.best_ms << ", \"mean_ms\": " << point.timing.mean_ms
        << ", \"speedup_vs_1\": "
        << std_timing.best_ms / point.timing.best_ms << "}"
        << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"checkpoint_boundaries\": " << ckpt.boundaries << ",\n"
      << "  \"checkpoint_state_bytes\": " << ckpt.state_bytes << ",\n"
      << "  \"checkpoint_write_mean_ms\": " << ckpt.write_mean_ms << ",\n"
      << "  \"checkpoint_pass_mean_ms\": " << ckpt.pass_mean_ms << ",\n"
      << "  \"checkpoint_write_pct_of_pass\": " << ckpt.write_pct_of_pass
      << ",\n"
      << "  \"checkpoint_overhead_pct\": " << ckpt.overhead_pct << ",\n";
  out << "  \"standard_inferences\": " << std_timing.result.inferences.size()
      << ",\n"
      << "  \"standard_iterations\": " << std_timing.result.stats.iterations
      << "\n"
      << "}\n";
  std::cout << "standard: best " << std_timing.best_ms << " ms, mean "
            << std_timing.mean_ms << " ms over " << reps << " reps\n"
            << "small:    best " << small_timing.best_ms << " ms, mean "
            << small_timing.mean_ms << " ms\n"
            << "checkpoint: " << ckpt.write_mean_ms << " ms/write over "
            << ckpt.boundaries << " boundaries (" << ckpt.state_bytes
            << " state bytes, " << ckpt.write_pct_of_pass
            << "% of pass raw, " << ckpt.overhead_pct
            << "% at the default interval)\n";
  return 0;
}
