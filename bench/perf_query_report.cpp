// Snapshot/query performance report: builds the standard experiment's
// snapshot artifact, then times the full serving path and emits a JSON
// summary for the repo's bench trajectory (BENCH_query.json):
//
//   - snapshot build (run -> records -> serialized bytes) and write time
//   - mmap open + validate time (the cold-start cost of a server restart)
//   - direct QueryEngine::lookup throughput, single- and multi-threaded
//   - `mapit serve` loopback throughput with 4 pipelined clients (the
//     ISSUE's >= 100k queries/sec bar)
//
//   perf_query_report [--out FILE] [--reps N] [--clients N] [--batch N]
//
// The report also records the artifact's size and CRC; the CI snapshot
// smoke compares a freshly built artifact's CRC against the committed
// value, so a format or determinism regression shows up as a checksum
// drift in review.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "eval/experiment.h"
#include "query/query_engine.h"
#include "query/server.h"
#include "store/reader.h"
#include "store/writer.h"

namespace {

using namespace mapit;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One pipelined loopback client: sends the whole batch, then drains until
/// it has seen one answer line per query. Returns false on socket failure.
bool run_client(std::uint16_t port, const std::string& batch,
                std::size_t expected_lines, int reps) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&address),
              sizeof(address)) != 0) {
    close(fd);
    return false;
  }
  std::vector<char> buffer(1 << 16);
  for (int rep = 0; rep < reps; ++rep) {
    std::size_t sent = 0;
    while (sent < batch.size()) {
      const ssize_t n = send(fd, batch.data() + sent, batch.size() - sent,
                             MSG_NOSIGNAL);
      if (n <= 0) {
        close(fd);
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    std::size_t lines = 0;
    while (lines < expected_lines) {
      const ssize_t n = recv(fd, buffer.data(), buffer.size(), 0);
      if (n <= 0) {
        close(fd);
        return false;
      }
      for (ssize_t i = 0; i < n; ++i) {
        if (buffer[static_cast<std::size_t>(i)] == '\n') ++lines;
      }
    }
  }
  close(fd);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_query.json";
  int reps = 5;
  int clients = 4;
  std::size_t batch_queries = 2000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--reps") {
      reps = std::stoi(next());
    } else if (arg == "--clients") {
      clients = std::stoi(next());
    } else if (arg == "--batch") {
      batch_queries = std::stoul(next());
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  std::cerr << "building standard experiment...\n";
  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::standard());

  // --- snapshot build + write -------------------------------------------
  std::cerr << "building snapshot...\n";
  double build_ms = 0.0;
  std::string bytes;
  core::Result result;
  {
    const auto start = Clock::now();
    result = experiment->run_mapit();
    const store::SnapshotData data = store::make_snapshot_data(
        result, experiment->graph(), experiment->ip2as());
    bytes = store::serialize_snapshot(data);
    build_ms = ms_since(start);
  }
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "perf_query_snapshot.bin";
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // --- mmap open + validate ---------------------------------------------
  double open_best_ms = 0.0;
  for (int i = 0; i < reps; ++i) {
    const auto start = Clock::now();
    const store::SnapshotReader probe = store::SnapshotReader::open(
        path.string());
    const double ms = ms_since(start);
    if (i == 0 || ms < open_best_ms) open_best_ms = ms;
  }
  const store::SnapshotReader reader = store::SnapshotReader::open(
      path.string());
  const query::QueryEngine engine(reader);

  // Query mix: every stored half (hits) plus one miss per hit.
  std::vector<std::pair<net::Ipv4Address, graph::Direction>> probes;
  for (const store::InferenceRecord& record : reader.inferences()) {
    probes.emplace_back(net::Ipv4Address(record.address),
                        record.direction == 0 ? graph::Direction::kForward
                                              : graph::Direction::kBackward);
    probes.emplace_back(net::Ipv4Address(record.address ^ 0x00FF00FFu),
                        graph::Direction::kForward);
  }

  // --- direct lookup throughput -----------------------------------------
  auto time_lookups = [&](int threads) {
    std::atomic<std::uint64_t> hits{0};
    const auto start = Clock::now();
    std::vector<std::thread> workers;
    const int sweeps = 50;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        std::uint64_t local = 0;
        for (int sweep = 0; sweep < sweeps; ++sweep) {
          for (const auto& [address, direction] : probes) {
            if (engine.lookup(address, direction) != nullptr) ++local;
          }
        }
        hits += local;
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double seconds = ms_since(start) / 1000.0;
    const double total =
        static_cast<double>(probes.size()) * sweeps * threads;
    (void)hits;
    return total / seconds;
  };
  std::cerr << "timing direct lookups...\n";
  const double direct_qps_1 = time_lookups(1);
  const double direct_qps_4 = time_lookups(4);

  // --- serve throughput --------------------------------------------------
  std::cerr << "timing serve (" << clients << " clients)...\n";
  query::LineServer server(engine, 0);
  server.start();
  std::string batch;
  for (std::size_t i = 0; i < batch_queries; ++i) {
    const auto& [address, direction] = probes[i % probes.size()];
    batch += "lookup ";
    batch += address.to_string();
    batch += direction == graph::Direction::kForward ? " f\n" : " b\n";
  }
  double serve_qps = 0.0;
  {
    const auto start = Clock::now();
    std::vector<std::thread> threads;
    std::atomic<bool> ok{true};
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        if (!run_client(server.port(), batch, batch_queries, reps)) {
          ok = false;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double seconds = ms_since(start) / 1000.0;
    if (!ok) {
      std::cerr << "serve benchmark client failed\n";
      return 1;
    }
    serve_qps = static_cast<double>(batch_queries) * reps * clients / seconds;
  }
  server.stop();
  std::filesystem::remove(path);

  char crc_hex[9];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", reader.payload_crc32());

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"benchmark\": \"BM_SnapshotQuery\",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"snapshot_build_ms\": " << build_ms << ",\n"
      << "  \"snapshot_bytes\": " << bytes.size() << ",\n"
      << "  \"snapshot_crc32\": \"" << crc_hex << "\",\n"
      << "  \"mmap_open_best_ms\": " << open_best_ms << ",\n"
      << "  \"direct_lookup_qps_1thread\": " << direct_qps_1 << ",\n"
      << "  \"direct_lookup_qps_4thread\": " << direct_qps_4 << ",\n"
      << "  \"serve_clients\": " << clients << ",\n"
      << "  \"serve_batch_queries\": " << batch_queries << ",\n"
      << "  \"serve_qps\": " << serve_qps << ",\n"
      << "  \"standard_inferences\": " << result.inferences.size() << ",\n"
      << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << "\n"
      << "}\n";

  std::cout << "snapshot: " << bytes.size() << " bytes (crc32 " << crc_hex
            << "), built in " << build_ms << " ms, opens in " << open_best_ms
            << " ms\n"
            << "direct lookups: " << direct_qps_1 / 1e6 << " M qps (1 thread), "
            << direct_qps_4 / 1e6 << " M qps (4 threads)\n"
            << "serve: " << serve_qps / 1e3 << " k qps (" << clients
            << " pipelined clients)\n";
  return 0;
}
