// Snapshot/query performance report: builds the standard experiment's
// snapshot artifact, then times the full serving path and emits a JSON
// summary for the repo's bench trajectory (BENCH_query.json):
//
//   - snapshot build (run -> records -> serialized bytes) and write time
//   - mmap open + validate time (the cold-start cost of a server restart)
//   - direct QueryEngine::lookup throughput, single- and multi-threaded
//   - loopback serve throughput with 4 pipelined clients (the ISSUE's
//     >= 100k queries/sec bar) for BOTH servers: the blocking LineServer
//     and the epoll AsyncServer (line protocol and, for the async server,
//     the length-prefixed binary protocol too)
//   - unpipelined request/answer round-trip latency (p50/p99 microseconds)
//     per server, and qps-per-core (throughput normalized by
//     hardware_threads, the honest figure for comparing across machines)
//
//   perf_query_report [--out FILE] [--reps N] [--clients N] [--batch N]
//
// The report also records the artifact's size and CRC; the CI snapshot
// smoke compares a freshly built artifact's CRC against the committed
// value, so a format or determinism regression shows up as a checksum
// drift in review. `scaling_valid` is false when the machine has fewer
// cores than the widest concurrency measured here (4-thread lookups /
// `clients` parallel clients) — such throughput numbers measure scheduling
// pressure, not scaling.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "eval/experiment.h"
#include "query/async_server.h"
#include "query/query_engine.h"
#include "query/server.h"
#include "store/reader.h"
#include "store/writer.h"

namespace {

using namespace mapit;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One pipelined loopback client: sends the whole batch, then drains until
/// it has seen one answer line per query. Returns false on socket failure.
bool run_client(std::uint16_t port, const std::string& batch,
                std::size_t expected_lines, int reps) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&address),
              sizeof(address)) != 0) {
    close(fd);
    return false;
  }
  std::vector<char> buffer(1 << 16);
  for (int rep = 0; rep < reps; ++rep) {
    std::size_t sent = 0;
    while (sent < batch.size()) {
      const ssize_t n = send(fd, batch.data() + sent, batch.size() - sent,
                             MSG_NOSIGNAL);
      if (n <= 0) {
        close(fd);
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    std::size_t lines = 0;
    while (lines < expected_lines) {
      const ssize_t n = recv(fd, buffer.data(), buffer.size(), 0);
      if (n <= 0) {
        close(fd);
        return false;
      }
      for (ssize_t i = 0; i < n; ++i) {
        if (buffer[static_cast<std::size_t>(i)] == '\n') ++lines;
      }
    }
  }
  close(fd);
  return true;
}

int connect_nodelay(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&address),
              sizeof(address)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// One pipelined binary-protocol client: sends the magic once, then per
/// rep sends a pre-framed batch and counts response frames until all
/// answers arrived. Returns false on socket failure or torn framing.
bool run_binary_client(std::uint16_t port, const std::string& framed_batch,
                       std::size_t expected_frames, int reps) {
  const int fd = connect_nodelay(port);
  if (fd < 0) return false;
  if (!send_all(fd, query::kBinaryProtocolMagic,
                sizeof(query::kBinaryProtocolMagic))) {
    close(fd);
    return false;
  }
  std::vector<char> buffer(1 << 16);
  // Frame-parser state persists across reads: TCP delivers headers and
  // payloads at arbitrary boundaries.
  unsigned char header[4];
  std::size_t header_have = 0;
  std::uint64_t payload_left = 0;
  for (int rep = 0; rep < reps; ++rep) {
    if (!send_all(fd, framed_batch.data(), framed_batch.size())) {
      close(fd);
      return false;
    }
    std::size_t frames = 0;
    while (frames < expected_frames) {
      const ssize_t n = recv(fd, buffer.data(), buffer.size(), 0);
      if (n <= 0) {
        close(fd);
        return false;
      }
      for (ssize_t i = 0; i < n;) {
        if (payload_left > 0) {
          const std::uint64_t eaten = std::min<std::uint64_t>(
              payload_left, static_cast<std::uint64_t>(n - i));
          payload_left -= eaten;
          i += static_cast<ssize_t>(eaten);
          if (payload_left == 0) ++frames;
          continue;
        }
        header[header_have++] =
            static_cast<unsigned char>(buffer[static_cast<std::size_t>(i)]);
        ++i;
        if (header_have == sizeof(header)) {
          header_have = 0;
          payload_left = static_cast<std::uint64_t>(header[0]) |
                         static_cast<std::uint64_t>(header[1]) << 8 |
                         static_cast<std::uint64_t>(header[2]) << 16 |
                         static_cast<std::uint64_t>(header[3]) << 24;
          if (payload_left == 0) ++frames;
        }
      }
    }
  }
  close(fd);
  return true;
}

struct LatencyStats {
  double p50_us = -1.0;
  double p99_us = -1.0;
};

/// Unpipelined request/answer round trips: one query line on the wire at a
/// time, full answer awaited before the next send. The honest per-request
/// latency a non-batching client sees (throughput numbers hide it).
LatencyStats measure_latency(std::uint16_t port, const std::string& line,
                             int samples) {
  LatencyStats stats;
  const int fd = connect_nodelay(port);
  if (fd < 0) return stats;
  std::vector<char> buffer(1 << 12);
  std::vector<double> rtts_us;
  rtts_us.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const auto start = Clock::now();
    if (!send_all(fd, line.data(), line.size())) break;
    bool answered = false;
    while (!answered) {
      const ssize_t n = recv(fd, buffer.data(), buffer.size(), 0);
      if (n <= 0) {
        close(fd);
        return stats;
      }
      answered = std::memchr(buffer.data(), '\n',
                             static_cast<std::size_t>(n)) != nullptr;
    }
    rtts_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count());
  }
  close(fd);
  if (rtts_us.empty()) return stats;
  std::sort(rtts_us.begin(), rtts_us.end());
  const auto nearest_rank = [&](double p) {
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(rtts_us.size() - 1) + 0.5);
    return rtts_us[std::min(rank, rtts_us.size() - 1)];
  };
  stats.p50_us = nearest_rank(0.50);
  stats.p99_us = nearest_rank(0.99);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_query.json";
  int reps = 5;
  int clients = 4;
  std::size_t batch_queries = 2000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--reps") {
      reps = std::stoi(next());
    } else if (arg == "--clients") {
      clients = std::stoi(next());
    } else if (arg == "--batch") {
      batch_queries = std::stoul(next());
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  std::cerr << "building standard experiment...\n";
  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::standard());

  // --- snapshot build + write -------------------------------------------
  std::cerr << "building snapshot...\n";
  double build_ms = 0.0;
  std::string bytes;
  core::Result result;
  {
    const auto start = Clock::now();
    result = experiment->run_mapit();
    const store::SnapshotData data = store::make_snapshot_data(
        result, experiment->graph(), experiment->ip2as());
    bytes = store::serialize_snapshot(data);
    build_ms = ms_since(start);
  }
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "perf_query_snapshot.bin";
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // --- mmap open + validate ---------------------------------------------
  double open_best_ms = 0.0;
  for (int i = 0; i < reps; ++i) {
    const auto start = Clock::now();
    const store::SnapshotReader probe = store::SnapshotReader::open(
        path.string());
    const double ms = ms_since(start);
    if (i == 0 || ms < open_best_ms) open_best_ms = ms;
  }
  const store::SnapshotReader reader = store::SnapshotReader::open(
      path.string());
  const query::QueryEngine engine(reader);

  // Query mix: every stored half (hits) plus one miss per hit.
  std::vector<std::pair<net::Ipv4Address, graph::Direction>> probes;
  for (const store::InferenceRecord& record : reader.inferences()) {
    probes.emplace_back(net::Ipv4Address(record.address),
                        record.direction == 0 ? graph::Direction::kForward
                                              : graph::Direction::kBackward);
    probes.emplace_back(net::Ipv4Address(record.address ^ 0x00FF00FFu),
                        graph::Direction::kForward);
  }

  // --- direct lookup throughput -----------------------------------------
  auto time_lookups = [&](int threads) {
    std::atomic<std::uint64_t> hits{0};
    const auto start = Clock::now();
    std::vector<std::thread> workers;
    const int sweeps = 50;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        std::uint64_t local = 0;
        for (int sweep = 0; sweep < sweeps; ++sweep) {
          for (const auto& [address, direction] : probes) {
            if (engine.lookup(address, direction) != nullptr) ++local;
          }
        }
        hits += local;
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double seconds = ms_since(start) / 1000.0;
    const double total =
        static_cast<double>(probes.size()) * sweeps * threads;
    (void)hits;
    return total / seconds;
  };
  std::cerr << "timing direct lookups...\n";
  const double direct_qps_1 = time_lookups(1);
  const double direct_qps_4 = time_lookups(4);

  // --- serve throughput + latency, both servers ---------------------------
  std::string batch;
  for (std::size_t i = 0; i < batch_queries; ++i) {
    const auto& [address, direction] = probes[i % probes.size()];
    batch += "lookup ";
    batch += address.to_string();
    batch += direction == graph::Direction::kForward ? " f\n" : " b\n";
  }
  std::string framed_batch;
  for (std::size_t i = 0; i < batch_queries; ++i) {
    const auto& [address, direction] = probes[i % probes.size()];
    std::string line = "lookup " + address.to_string();
    line += direction == graph::Direction::kForward ? " f" : " b";
    query::append_binary_frame(framed_batch, line);
  }
  const std::string latency_line =
      "lookup " + probes.front().first.to_string() + " f\n";
  constexpr int kLatencySamples = 2000;

  // Parallel pipelined clients against an already-started server; -1 on
  // client failure (reported by the caller, which knows the server name).
  const auto time_serve = [&](std::uint16_t port, bool binary) -> double {
    const auto start = Clock::now();
    std::vector<std::thread> threads;
    std::atomic<bool> ok{true};
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        const bool client_ok =
            binary ? run_binary_client(port, framed_batch, batch_queries, reps)
                   : run_client(port, batch, batch_queries, reps);
        if (!client_ok) ok = false;
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double seconds = ms_since(start) / 1000.0;
    if (!ok) return -1.0;
    return static_cast<double>(batch_queries) * reps * clients / seconds;
  };

  std::cerr << "timing blocking serve (" << clients << " clients)...\n";
  double serve_qps = 0.0;
  LatencyStats line_latency;
  {
    query::LineServer server(engine, 0);
    server.start();
    serve_qps = time_serve(server.port(), /*binary=*/false);
    line_latency = measure_latency(server.port(), latency_line,
                                   kLatencySamples);
    server.stop();
  }
  std::cerr << "timing async serve (" << clients << " clients)...\n";
  double serve_qps_async = 0.0;
  double serve_qps_async_binary = 0.0;
  LatencyStats async_latency;
  {
    query::AsyncServer server(engine, query::ServerOptions{});
    server.start();
    serve_qps_async = time_serve(server.port(), /*binary=*/false);
    serve_qps_async_binary = time_serve(server.port(), /*binary=*/true);
    async_latency = measure_latency(server.port(), latency_line,
                                    kLatencySamples);
    server.stop();
  }
  std::filesystem::remove(path);
  if (serve_qps < 0.0 || serve_qps_async < 0.0 ||
      serve_qps_async_binary < 0.0) {
    std::cerr << "serve benchmark client failed\n";
    return 1;
  }

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const double cores = hardware_threads > 0 ? hardware_threads : 1;
  // Widest concurrency this report measures: the 4-thread direct lookups
  // and the `clients` parallel serve clients (each of which the LineServer
  // pairs with a connection thread).
  const bool scaling_valid =
      cores >= std::max(4.0, static_cast<double>(clients));

  char crc_hex[9];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", reader.payload_crc32());

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"benchmark\": \"BM_SnapshotQuery\",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"snapshot_build_ms\": " << build_ms << ",\n"
      << "  \"snapshot_bytes\": " << bytes.size() << ",\n"
      << "  \"snapshot_crc32\": \"" << crc_hex << "\",\n"
      << "  \"mmap_open_best_ms\": " << open_best_ms << ",\n"
      << "  \"direct_lookup_qps_1thread\": " << direct_qps_1 << ",\n"
      << "  \"direct_lookup_qps_4thread\": " << direct_qps_4 << ",\n"
      << "  \"serve_clients\": " << clients << ",\n"
      << "  \"serve_batch_queries\": " << batch_queries << ",\n"
      << "  \"serve_qps\": " << serve_qps << ",\n"
      << "  \"serve_qps_per_core\": " << serve_qps / cores << ",\n"
      << "  \"serve_p50_us\": " << line_latency.p50_us << ",\n"
      << "  \"serve_p99_us\": " << line_latency.p99_us << ",\n"
      << "  \"serve_qps_async\": " << serve_qps_async << ",\n"
      << "  \"serve_qps_async_per_core\": " << serve_qps_async / cores
      << ",\n"
      << "  \"serve_qps_async_binary\": " << serve_qps_async_binary << ",\n"
      << "  \"serve_async_p50_us\": " << async_latency.p50_us << ",\n"
      << "  \"serve_async_p99_us\": " << async_latency.p99_us << ",\n"
      << "  \"latency_samples\": " << kLatencySamples << ",\n"
      << "  \"standard_inferences\": " << result.inferences.size() << ",\n"
      << "  \"hardware_threads\": " << hardware_threads << ",\n"
      << "  \"scaling_valid\": " << (scaling_valid ? "true" : "false")
      << "\n"
      << "}\n";

  std::cout << "snapshot: " << bytes.size() << " bytes (crc32 " << crc_hex
            << "), built in " << build_ms << " ms, opens in " << open_best_ms
            << " ms\n"
            << "direct lookups: " << direct_qps_1 / 1e6 << " M qps (1 thread), "
            << direct_qps_4 / 1e6 << " M qps (4 threads)\n"
            << "serve (blocking): " << serve_qps / 1e3 << " k qps, p50 "
            << line_latency.p50_us << " us, p99 " << line_latency.p99_us
            << " us (" << clients << " pipelined clients)\n"
            << "serve (async):    " << serve_qps_async / 1e3
            << " k qps line, " << serve_qps_async_binary / 1e3
            << " k qps binary, p50 " << async_latency.p50_us << " us, p99 "
            << async_latency.p99_us << " us\n";
  if (!scaling_valid) {
    std::cout << "note: scaling_valid=false — only " << hardware_threads
              << " hardware thread(s); concurrent figures are not scaling "
                 "evidence\n";
  }
  return 0;
}
