// Micro-benchmarks (google-benchmark) for the performance-critical pieces:
// longest-prefix-match lookups, neighbour-set construction, sanitization,
// and the end-to-end MAP-IT engine at two corpus scales.
#include <benchmark/benchmark.h>

#include <random>

#include "baselines/claims.h"
#include "eval/experiment.h"

namespace {

using namespace mapit;

const eval::Experiment& shared_experiment() {
  static const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::standard());
  return *experiment;
}

const eval::Experiment& small_experiment() {
  static const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::small());
  return *experiment;
}

void BM_PrefixTrieLongestMatch(benchmark::State& state) {
  const auto& experiment = shared_experiment();
  std::mt19937_64 rng(1);
  std::vector<net::Ipv4Address> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(net::Ipv4Address(static_cast<std::uint32_t>(rng())));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        experiment.ip2as().origin(probes[i++ & 1023]));
  }
}
BENCHMARK(BM_PrefixTrieLongestMatch);

void BM_Sanitize(benchmark::State& state) {
  const auto& experiment = shared_experiment();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::sanitize(experiment.raw_corpus()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(experiment.raw_corpus().size()));
}
BENCHMARK(BM_Sanitize)->Unit(benchmark::kMillisecond);

void BM_InterfaceGraphBuild(benchmark::State& state) {
  const auto& experiment = shared_experiment();
  const auto addresses = experiment.raw_corpus().distinct_addresses();
  for (auto _ : state) {
    graph::InterfaceGraph graph(experiment.corpus(), addresses);
    benchmark::DoNotOptimize(graph.size());
  }
}
BENCHMARK(BM_InterfaceGraphBuild)->Unit(benchmark::kMillisecond);

void BM_MapItEngineSmall(benchmark::State& state) {
  const auto& experiment = small_experiment();
  core::Options options;
  options.f = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.run_mapit(options));
  }
}
BENCHMARK(BM_MapItEngineSmall)->Unit(benchmark::kMillisecond);

void BM_MapItEngineStandard(benchmark::State& state) {
  const auto& experiment = shared_experiment();
  core::Options options;
  options.f = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.run_mapit(options));
  }
}
BENCHMARK(BM_MapItEngineStandard)->Unit(benchmark::kMillisecond);

// Thread-parallel full sweeps (Arg = worker count). Output is byte-identical
// to BM_MapItEngineStandard for every arg; only wall time should move.
void BM_MapItEngineParallel(benchmark::State& state) {
  const auto& experiment = shared_experiment();
  core::Options options;
  options.f = 0.5;
  options.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.run_mapit(options));
  }
}
BENCHMARK(BM_MapItEngineParallel)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ClaimsExtraction(benchmark::State& state) {
  const auto& experiment = shared_experiment();
  core::Options options;
  options.f = 0.5;
  const core::Result result = experiment.run_mapit(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::claims_from_result(result));
  }
}
BENCHMARK(BM_ClaimsExtraction);

}  // namespace

BENCHMARK_MAIN();
