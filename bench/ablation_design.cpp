// Ablation bench for the design choices DESIGN.md calls out.
//
// Runs MAP-IT at f=0.5 with individual mechanisms disabled and reports the
// precision/recall cost of each:
//   - no sibling grouping (§4.4.1/§4.9)
//   - no other-side (indirect) updates (§4.4.2)
//   - no dual-inference resolution (§4.4.3)
//   - no inverse-inference resolution (§4.4.4)
//   - no stub heuristic (§4.8)
//   - no IXP awareness (footnote 7)
//   - remove step using the add rule instead of the majority rule (§4.5)
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

int main() {
  using namespace mapit;
  benchutil::print_header("Ablations: contribution of each mechanism (f = 0.5)");

  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::standard());

  struct Ablation {
    const char* name;
    std::function<void(core::Options&)> apply;
  };
  const Ablation ablations[] = {
      {"full algorithm", [](core::Options&) {}},
      {"- sibling grouping",
       [](core::Options& o) { o.sibling_grouping = false; }},
      {"- other-side updates",
       [](core::Options& o) { o.update_other_sides = false; }},
      {"- dual resolution", [](core::Options& o) { o.resolve_duals = false; }},
      {"- inverse resolution",
       [](core::Options& o) { o.resolve_inverses = false; }},
      {"- stub heuristic", [](core::Options& o) { o.stub_heuristic = false; }},
      {"- IXP awareness", [](core::Options& o) { o.ixp_aware = false; }},
      {"remove: add-rule",
       [](core::Options& o) { o.remove_rule = core::RemoveRule::kAddRule; }},
  };

  for (const Ablation& ablation : ablations) {
    core::Options options;
    options.f = 0.5;
    ablation.apply(options);
    const core::Result result = experiment->run_mapit(options);
    const baselines::Claims claims = baselines::claims_from_result(result);
    for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
      const benchutil::Score score =
          benchutil::score_target(*experiment, target, claims);
      benchutil::print_score_row(ablation.name, target, score);
    }
    std::printf("\n");
  }
  return 0;
}
