// Extension experiment: AS-level traceroute path accuracy (the §1
// motivation "more precisely identifying the ASes traversed on a
// traceroute path").
//
// For a sample of traces, compares three AS-path derivations against the
// forwarding plane's true router-path AS sequence:
//   naive     — prefix-based IP2AS per hop (Fig 1's mistake),
//   MAP-IT    — PathAnnotator using the converged inferences.
// Reported per category: fraction of traces whose whole AS path is exact.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/as_path.h"
#include "route/as_routing.h"
#include "route/forwarder.h"
#include "tracesim/simulator.h"

int main() {
  using namespace mapit;
  benchutil::print_header(
      "Extension: AS-level path accuracy, naive IP2AS vs MAP-IT (f = 0.5)");

  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::standard());
  core::Options options;
  options.f = 0.5;
  const core::Result result = experiment->run_mapit(options);
  const core::PathAnnotator annotator(result, experiment->ip2as());

  route::AsRouting routing(experiment->internet().true_relationships());
  route::Forwarder forwarder(experiment->internet(), routing);
  tracesim::TracerouteSimulator simulator(experiment->internet(), forwarder,
                                          experiment->config().simulation);

  std::size_t compared = 0, naive_exact = 0, inferred_exact = 0;
  std::size_t naive_extra_as = 0, inferred_extra_as = 0;
  for (std::size_t i = 0; i < experiment->corpus().size(); i += 11) {
    const trace::Trace& t = experiment->corpus().traces()[i];
    const auto path =
        forwarder.path(simulator.monitors()[t.monitor].source_router,
                       t.destination, 0);
    if (path.empty()) continue;
    std::vector<asdata::Asn> truth;
    for (const route::RouterHop& hop : path) {
      const asdata::Asn owner = experiment->internet().router(hop.router).owner;
      if (truth.empty() || truth.back() != owner) truth.push_back(owner);
    }
    const core::AnnotatedPath annotated = annotator.annotate(t);
    ++compared;
    if (annotated.naive_as_path == truth) ++naive_exact;
    if (annotated.as_path == truth) ++inferred_exact;
    if (annotated.naive_as_path.size() > truth.size()) ++naive_extra_as;
    if (annotated.as_path.size() > truth.size()) ++inferred_extra_as;
  }

  std::printf("traces compared                 : %zu\n", compared);
  std::printf("exact AS path, naive IP2AS      : %5.1f%%\n",
              100.0 * static_cast<double>(naive_exact) /
                  static_cast<double>(compared));
  std::printf("exact AS path, MAP-IT annotated : %5.1f%%\n",
              100.0 * static_cast<double>(inferred_exact) /
                  static_cast<double>(compared));
  std::printf("false extra AS, naive           : %5.1f%%\n",
              100.0 * static_cast<double>(naive_extra_as) /
                  static_cast<double>(compared));
  std::printf("false extra AS, MAP-IT          : %5.1f%%\n",
              100.0 * static_cast<double>(inferred_extra_as) /
                  static_cast<double>(compared));
  std::printf("\nexpected shape: MAP-IT annotation fixes a large share of the\n"
              "boundary mislabelings (Fig 1's false-AS problem) that prefix\n"
              "IP2AS produces; residual misses come from artifact traces.\n");
  return 0;
}
