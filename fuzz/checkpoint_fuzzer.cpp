// Fuzz target: core::read_checkpoint_bytes — the full checkpoint
// validation path (magic, endianness marker, version, payload size, CRC,
// reserved bytes, payload cursor) over an in-memory image, exactly what
// read_checkpoint runs after slurping the file.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/checkpoint.h"
#include "net/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  try {
    const mapit::core::Checkpoint checkpoint =
        mapit::core::read_checkpoint_bytes(bytes, "fuzz input");
    (void)checkpoint.engine_state.size();
  } catch (const mapit::Error&) {
    // Expected rejection path (CheckpointError derives from mapit::Error).
  }
  return 0;
}
