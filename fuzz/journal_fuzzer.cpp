// Fuzz target: core::read_journal_bytes — the delta-journal validation
// path (magic, endianness marker, version, header CRC, then every record
// frame: size sanity cap, payload CRC, type, reserved bytes, torn-tail
// detection) over an in-memory image, exactly what read_journal runs after
// slurping the file.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/journal.h"
#include "net/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  try {
    const mapit::core::JournalContents contents =
        mapit::core::read_journal_bytes(bytes, "fuzz input");
    (void)contents.records.size();
    (void)contents.durable_size;
  } catch (const mapit::Error&) {
    // Expected rejection path (JournalError derives from CheckpointError
    // derives from mapit::Error).
  }
  return 0;
}
