// Fuzz target: core::read_inferences — the address|dir|asn|asn|kind|v/n
// result parser. Accepted records are re-serialized, which asserts the
// round-trip formatting never chokes on values the parser let through.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "core/result_io.h"
#include "net/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    std::istringstream in(text);
    const auto inferences = mapit::core::read_inferences(in);
    std::ostringstream out;
    mapit::core::write_inferences(out, inferences);
  } catch (const mapit::Error&) {
    // Expected rejection path.
  }
  return 0;
}
