// Fuzz target: bgp::Rib::read — the collector|prefix|asn RIB parser, in
// both strict and lenient modes, plus the consolidation pass over whatever
// survived (it walks every accepted announcement).
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "bgp/rib.h"
#include "net/error.h"
#include "net/load_report.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    std::istringstream in(text);
    (void)mapit::bgp::Rib::read(in);
  } catch (const mapit::Error&) {
    // Expected rejection path.
  }
  {
    std::istringstream in(text);
    mapit::LoadReport report;
    const mapit::bgp::Rib rib = mapit::bgp::Rib::read(in, &report);
    (void)report.summary("rib");
    (void)rib.consolidate();
    (void)rib.moas_prefixes();
  }
  return 0;
}
