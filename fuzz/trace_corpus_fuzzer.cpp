// Fuzz target: trace::read_corpus — the traceroute text parser, in both
// strict and lenient modes.
//
// Contract under fuzzing: arbitrary bytes either parse or raise
// mapit::Error. Anything else escaping (raw std exceptions, UB caught by
// the sanitizers) is a finding. Lenient mode additionally must never throw
// for line-level damage — it quarantines into the LoadReport instead.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "net/error.h"
#include "net/load_report.h"
#include "trace/trace_io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    std::istringstream in(text);
    (void)mapit::trace::read_corpus(in, /*threads=*/1);
  } catch (const mapit::Error&) {
    // Expected rejection path.
  }
  {
    std::istringstream in(text);
    mapit::LoadReport report;
    const auto corpus = mapit::trace::read_corpus(in, /*threads=*/1, &report);
    // Exercise the quarantine summary formatting too.
    (void)report.summary("traces");
    (void)corpus.traces().size();
  }
  return 0;
}
