// Fuzz target: the MDP1 frame layer (ingest/transport.h) — the bytes a
// hostile or corrupted peer can put on the delta-transport socket.
//
// Three properties are checked on every input:
//   1. No escape: FrameReader and the typed payload parsers only ever
//     throw TransportError. Anything else (std::bad_alloc from a trusted
//     length field, std::out_of_range, an InvariantError) is a bug that
//     would kill a receiver connection thread in production.
//   2. Chunking invariance: feeding the same bytes one byte at a time
//     must yield exactly the frame sequence (and the same accept/reject
//     outcome) of a single whole-buffer delivery — TCP segmentation must
//     never change what the receiver decodes.
//   3. Round-trip: a payload the typed parser accepts must re-serialize
//     to byte-identical frame bytes. The wire format has one canonical
//     encoding; parse/serialize drift here is how a resent batch could
//     stop matching its watermark.
//
// Replayed/duplicate/oversized/zero-length frames are all just byte
// patterns to this harness; the committed corpus seeds each of them.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "ingest/transport.h"

namespace {

using namespace mapit::ingest;

struct FeedResult {
  std::vector<Frame> frames;
  bool rejected = false;

  friend bool operator==(const FeedResult&, const FeedResult&) = default;
};

FeedResult feed(std::string_view bytes, std::size_t chunk) {
  FeedResult result;
  FrameReader reader;
  try {
    for (std::size_t i = 0; i < bytes.size(); i += chunk) {
      reader.append(bytes.substr(i, chunk));
      Frame frame;
      while (reader.next(frame)) result.frames.push_back(frame);
    }
  } catch (const TransportError&) {
    result.rejected = true;
  }
  return result;
}

void check_typed_roundtrip(const Frame& frame) {
  const std::string framed = serialize_frame(frame.type, frame.payload);
  try {
    switch (frame.type) {
      case FrameType::kChallenge:
        if (serialize_challenge(parse_challenge(frame.payload)) != framed) {
          std::abort();
        }
        break;
      case FrameType::kHello:
        if (serialize_hello(parse_hello(frame.payload)) != framed) {
          std::abort();
        }
        break;
      case FrameType::kHelloAck:
        if (serialize_hello_ack(parse_hello_ack(frame.payload)) != framed) {
          std::abort();
        }
        break;
      case FrameType::kBatch:
        if (serialize_batch(parse_batch(frame.payload)) != framed) {
          std::abort();
        }
        break;
      case FrameType::kAck:
        if (serialize_ack(parse_ack(frame.payload)) != framed) {
          std::abort();
        }
        break;
      case FrameType::kError:
        if (serialize_error(parse_error(frame.payload)) != framed) {
          std::abort();
        }
        break;
      case FrameType::kHeartbeat:
        break;  // payload is ignored by both ends
    }
  } catch (const TransportError&) {
    // A well-framed envelope around a malformed payload: rejected with
    // the right type, connection-fatal, never journal-corrupting.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  const FeedResult whole = feed(bytes, std::max<std::size_t>(size, 1));
  const FeedResult bytewise = feed(bytes, 1);
  if (!(whole == bytewise)) std::abort();  // chunking changed the frames
  for (const Frame& frame : whole.frames) check_typed_roundtrip(frame);
  return 0;
}
