// Standalone replay driver: gives every *_fuzzer.cpp harness a plain main()
// when libFuzzer is unavailable (gcc builds, MAPIT_FUZZ=OFF).
//
// Usage: fuzz_<target> <file-or-directory>...
// Each file argument is fed to LLVMFuzzerTestOneInput once; directories are
// walked non-recursively in sorted order. This is how the committed
// fuzz/corpus/ seeds and fuzz/regressions/ crash inputs run as ordinary
// ctest cases (label: fuzz-regression) in every build configuration — a
// past finding stays covered even in jobs that cannot link libFuzzer.
//
// Exit status: 0 when every input was replayed (the harness aborts the
// process on a real finding), 1 on usage or I/O errors.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

bool replay_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  (void)LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  std::printf("replayed %zu bytes: %s\n", bytes.size(), path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file-or-directory>...\n", argv[0]);
    return 1;
  }
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else {
      files.push_back(arg.string());
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& file : files) {
    if (!replay_file(file)) return 1;
  }
  std::printf("replayed %zu inputs\n", files.size());
  return 0;
}
