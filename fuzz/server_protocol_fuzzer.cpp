// Fuzz target: query::ProtocolSession — the socketless request framing
// shared with AsyncServer (mode sniff, line protocol with oversized-line
// ERR-and-discard, MQB1 binary framing with oversized-frame ERR-and-skip),
// driven against a real QueryEngine over a small in-memory snapshot.
//
// Two properties are checked on every input:
//   1. No escape: arbitrary bytes never raise past the session (the servers
//      have no try/catch around feed(), so an exception here is a
//      connection-killing bug in production).
//   2. Chunking invariance: delivering the same bytes one byte at a time
//      must produce exactly the answer stream of a single delivery — TCP
//      segmentation must never change what a client reads back.
//
// max_line_bytes is deliberately tiny (64) so the fuzzer reaches the
// oversized-line and oversized-frame paths with short inputs.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "query/protocol.h"
#include "query/query_engine.h"
#include "store/reader.h"
#include "store/writer.h"

namespace {

constexpr std::size_t kMaxLineBytes = 64;

// One snapshot + engine for the whole process: the engine is immutable and
// concurrency-safe, so every fuzz iteration can share it.
const mapit::query::QueryEngine& shared_engine() {
  static const mapit::query::QueryEngine* engine = [] {
    using namespace mapit::store;
    SnapshotData data;
    // Addresses ascend, directions ascend within an address — the writer
    // enforces the documented section sort orders.
    data.inferences.push_back(
        InferenceRecord{0x0A000001u, 0, 0, 0, 0, 100, 200, 3, 4});
    data.inferences.push_back(
        InferenceRecord{0x0A000001u, 1, 1, 0, 0, 100, 300, 2, 4});
    data.links.push_back(
        LinkRecord{0x0A000001u, 0x0A000009u, 100, 200, 2, 3, 4, 0, {0, 0, 0}});
    data.bgp_prefixes.push_back(PrefixRecord{0x0A000000u, 200, 24, {0, 0, 0}});
    data.mappings.push_back(MappingRecord{0x0A000001u, 300, 1, {0, 0, 0}});
    static const std::string bytes = serialize_snapshot(data);
    static const SnapshotReader reader = SnapshotReader::from_bytes(bytes);
    return new mapit::query::QueryEngine(reader);
  }();
  return *engine;
}

std::string run_session(std::string_view bytes, std::size_t chunk) {
  mapit::query::ProtocolSession session(
      shared_engine(), kMaxLineBytes,
      [] { return std::string("mapit up 1s conns 0"); });
  std::string out;
  for (std::size_t i = 0; i < bytes.size(); i += chunk) {
    session.feed(bytes.substr(i, chunk), out);
  }
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  const std::string whole = run_session(bytes, bytes.size() + 1);
  const std::string bytewise = run_session(bytes, 1);
  if (whole != bytewise) std::abort();  // chunking changed the answers
  return 0;
}
