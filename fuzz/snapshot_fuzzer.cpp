// Fuzz target: store::SnapshotReader::from_bytes — the binary snapshot
// validator (header, section table, CRC). When an image validates, a
// QueryEngine is built over it and queried: the reader's acceptance
// promise is that every accepted section is safe to binary-search, so
// post-validation lookups must not be able to crash either.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "net/error.h"
#include "query/query_engine.h"
#include "store/reader.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  try {
    const mapit::store::SnapshotReader reader =
        mapit::store::SnapshotReader::from_bytes(bytes);
    const mapit::query::QueryEngine engine(reader);
    (void)engine.answer("stats");
    (void)engine.answer("lookup 10.0.0.1 f");
    (void)engine.answer("addr 10.0.0.1");
    (void)engine.answer("ip2as 10.0.0.1");
    (void)engine.answer("ip2as 10.0.0.1 b");
    (void)engine.answer("links 100 200");
  } catch (const mapit::Error&) {
    // Expected rejection path (SnapshotError derives from mapit::Error).
  }
  return 0;
}
